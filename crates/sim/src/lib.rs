//! Simulation foundation for the T3 reproduction.
//!
//! This crate holds everything the rest of the workspace agrees on:
//!
//! * [`config`] — the simulated system configuration (Table 1 of the
//!   paper), with unit conversions between wall-clock quantities
//!   (GB/s, ns) and the simulator's cycle domain.
//! * [`stats`] — DRAM traffic accounting by category, which drives the
//!   paper's data-movement results (Figure 18).
//! * [`timeseries`] — bucketed traffic-over-time recording, which
//!   drives the paper's DRAM-traffic timelines (Figure 17).
//! * [`rng`] — a deterministic SplitMix64 generator for randomized
//!   tests and workloads (the workspace builds offline, with no
//!   external crates).
//!
//! The timing simulator is *cycle-stepped*: components expose
//! `step(now)`-style methods and exchange work in units of 256-byte
//! memory transactions. All cycle arithmetic uses [`Cycle`] (a plain
//! `u64` alias) so that times stay exact and deterministic.
//!
//! # Examples
//!
//! ```
//! use t3_sim::config::SystemConfig;
//!
//! let cfg = SystemConfig::paper_default();
//! assert_eq!(cfg.gpu.num_cus, 80);
//! // 1 TB/s HBM at a 1.4 GHz controller clock is ~714 bytes/cycle.
//! assert!((cfg.mem.bytes_per_cycle() - 714.28).abs() < 1.0);
//! ```

pub mod config;
pub mod rng;
pub mod stats;
pub mod timeseries;

/// Simulator time, in GPU core cycles (1.4 GHz by default).
pub type Cycle = u64;

/// A size or traffic volume, in bytes.
pub type Bytes = u64;

/// How an orchestrating engine loop advances simulated time.
///
/// Both modes produce byte-identical results — cycle counts, traces,
/// metrics, timeseries. [`SimMode::FastForward`] merely leaps `now`
/// over provably-idle gaps: whenever no component has work before the
/// minimum `next_event` cycle, the loop replays the skipped cycles'
/// bookkeeping in closed form and jumps. [`SimMode::Stepped`] is the
/// original cycle-by-cycle reference path, kept behind this flag as
/// the equivalence oracle for the determinism tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SimMode {
    /// Advance one cycle at a time (the reference engine).
    Stepped,
    /// Leap over idle gaps to the next interesting cycle.
    #[default]
    FastForward,
}

impl SimMode {
    /// Canonical label for reports and fingerprints.
    pub fn label(self) -> &'static str {
        match self {
            SimMode::Stepped => "stepped",
            SimMode::FastForward => "fast-forward",
        }
    }
}

/// Converts a bandwidth in GB/s (decimal: 1e9 bytes/s) into bytes per
/// core cycle at the given clock.
///
/// # Examples
///
/// ```
/// let bpc = t3_sim::gb_s_to_bytes_per_cycle(150.0, 1.4);
/// assert!((bpc - 107.14).abs() < 0.01);
/// ```
pub fn gb_s_to_bytes_per_cycle(gb_s: f64, clock_ghz: f64) -> f64 {
    gb_s / clock_ghz
}

/// Converts a latency in nanoseconds into (rounded-up) core cycles at
/// the given clock.
///
/// # Examples
///
/// ```
/// assert_eq!(t3_sim::ns_to_cycles(500.0, 1.4), 700);
/// ```
pub fn ns_to_cycles(ns: f64, clock_ghz: f64) -> Cycle {
    (ns * clock_ghz).ceil() as Cycle // t3-lint: allow(float-cycles) -- config-time unit conversion, evaluated once; explicit ceil
}

/// Converts cycles back to microseconds at the given clock, for
/// human-readable reporting.
///
/// # Examples
///
/// ```
/// let us = t3_sim::cycles_to_us(1_400_000, 1.4);
/// assert!((us - 1000.0).abs() < 1e-9);
/// ```
pub fn cycles_to_us(cycles: Cycle, clock_ghz: f64) -> f64 {
    cycles as f64 / (clock_ghz * 1e3)
}

/// Geometric mean of a non-empty slice of positive values.
///
/// The paper reports most aggregate results as geomeans; keeping the
/// helper here lets every experiment use the identical definition.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive value.
///
/// # Examples
///
/// ```
/// let g = t3_sim::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversion_round_trip() {
        let bpc = gb_s_to_bytes_per_cycle(1000.0, 1.4);
        assert!((bpc * 1.4 - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn latency_conversion_rounds_up() {
        assert_eq!(ns_to_cycles(1.0, 1.4), 2);
        assert_eq!(ns_to_cycles(0.0, 1.4), 0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "geomean of empty slice")]
    fn geomean_empty_panics() {
        geomean(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_nonpositive_panics() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn cycles_to_us_at_one_ghz() {
        assert!((cycles_to_us(1000, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sim_mode_defaults_to_fast_forward() {
        assert_eq!(SimMode::default(), SimMode::FastForward);
        assert_eq!(SimMode::Stepped.label(), "stepped");
        assert_eq!(SimMode::FastForward.label(), "fast-forward");
    }
}
