//! Producer output address-space configuration (Section 4.4).
//!
//! T3 never modifies GEMM kernels. Instead, the collective library
//! configures how the producer's *output address space* maps onto the
//! node — exactly the `remote_map` / `dma_map` pseudo-code of
//! Figure 12 — and that configuration programs both the Tracker's
//! trigger thresholds and the pre-queued DMA commands.
//!
//! An [`OutputConfig`] lists, in the device's (staggered) computation
//! order, where each chunk of the producer's output goes. Canned
//! configurations are provided for the collectives the paper covers:
//! ring reduce-scatter (Section 4), direct reduce-scatter on a
//! fully-connected topology, and all-to-all (Section 7.1). The
//! [`ConfigBuilder`] mirrors the paper's API for custom collectives.

use t3_net::ring::Ring;
use t3_topo::schedule::{CollectiveKind, Schedule};

/// Where one chunk of the producer's output is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkRoute {
    /// Written locally only; this device will own the chunk. Tracked
    /// so completion (local + incoming updates) is observable.
    LocalOnly {
        /// Expected updates per element (2 for ring-RS).
        updates_per_element: u32,
    },
    /// Producer stores go straight to `device`'s memory as fine-grained
    /// peer-to-peer updates (`remote_map` with reduce semantics); no
    /// local copy, not tracked locally.
    RemoteUpdate {
        /// Destination device.
        device: usize,
    },
    /// Producer stores go straight to `device`'s memory as plain
    /// stores, no local copy (all-to-all chunks).
    RemoteStore {
        /// Destination device.
        device: usize,
    },
    /// Written locally (as NMC updates); once the Tracker counts
    /// `updates_per_element` updates per element, the pre-programmed
    /// DMA *updates* the chunk into `device`'s memory (`dma_map` with
    /// reduce semantics — the ring-RS steady state).
    LocalThenDmaUpdate {
        /// Destination device.
        device: usize,
        /// Expected updates per element before the DMA fires.
        updates_per_element: u32,
    },
    /// As above, but the DMA performs plain stores (all-gather).
    LocalThenDmaStore {
        /// Destination device.
        device: usize,
    },
}

impl ChunkRoute {
    /// Whether this chunk's local memory region is tracked.
    pub fn tracked(self) -> bool {
        !matches!(
            self,
            ChunkRoute::RemoteUpdate { .. } | ChunkRoute::RemoteStore { .. }
        )
    }

    /// Expected updates per element for tracked chunks (1 where only
    /// the producer writes).
    pub fn updates_per_element(self) -> u32 {
        match self {
            ChunkRoute::LocalOnly {
                updates_per_element,
            }
            | ChunkRoute::LocalThenDmaUpdate {
                updates_per_element,
                ..
            } => updates_per_element,
            ChunkRoute::LocalThenDmaStore { .. } => 1,
            ChunkRoute::RemoteUpdate { .. } | ChunkRoute::RemoteStore { .. } => 0,
        }
    }

    /// Destination device for outgoing data, if any.
    pub fn destination(self) -> Option<usize> {
        match self {
            ChunkRoute::LocalOnly { .. } => None,
            ChunkRoute::RemoteUpdate { device }
            | ChunkRoute::RemoteStore { device }
            | ChunkRoute::LocalThenDmaUpdate { device, .. }
            | ChunkRoute::LocalThenDmaStore { device } => Some(device),
        }
    }

    /// Whether outgoing data leaves via a Tracker-triggered DMA.
    pub fn uses_dma(self) -> bool {
        matches!(
            self,
            ChunkRoute::LocalThenDmaUpdate { .. } | ChunkRoute::LocalThenDmaStore { .. }
        )
    }
}

/// One device's producer-output configuration: chunk routes in local
/// computation order (position 0 is computed first — the stagger of
/// Section 4.4 is encoded in which collective chunk sits at which
/// position).
///
/// # Examples
///
/// Figure 12's configuration, built with the paper's API:
///
/// ```
/// use t3_core::addrmap::{ChunkRoute, ConfigBuilder};
///
/// let cfg = ConfigBuilder::new(4)
///     .remote_map_update(0, 3) // warm-up chunk straight to GPU 3
///     .dma_map_update(1, 3, 2) // steady state: DMA after 2 updates
///     .dma_map_update(2, 3, 2)
///     .local(3, 2)             // the owned chunk
///     .build();
/// assert!(cfg.route(1).uses_dma());
/// assert_eq!(cfg.route(0).destination(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputConfig {
    routes: Vec<ChunkRoute>,
    chunk_ids: Vec<usize>,
}

impl OutputConfig {
    /// Number of chunks the producer's output is divided into.
    pub fn num_chunks(&self) -> usize {
        self.routes.len()
    }

    /// Route of the chunk computed at local position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn route(&self, p: usize) -> ChunkRoute {
        self.routes[p]
    }

    /// Collective chunk id computed at local position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn chunk_id(&self, p: usize) -> usize {
        self.chunk_ids[p]
    }

    /// Local position at which collective chunk `chunk` is computed.
    ///
    /// # Panics
    ///
    /// Panics if the chunk is not in the configuration.
    pub fn position_of_chunk(&self, chunk: usize) -> usize {
        self.chunk_ids
            .iter()
            .position(|&c| c == chunk)
            .expect("chunk not present in configuration")
    }

    /// The fused ring reduce-scatter configuration of Figures 7/11/12
    /// for `device` in `ring`:
    ///
    /// * position 0 (chunk `device`): fine-grained remote updates into
    ///   the next device (the warm-up `remote_map` step);
    /// * positions `1..=N-2`: local NMC stores, then a Tracker-fired
    ///   DMA update to the next device after 2 updates/element — the
    ///   N−2 steady-state steps;
    /// * position `N-1`: the chunk this device owns; local only.
    pub fn ring_reduce_scatter(ring: Ring, device: usize) -> Self {
        Self::ring_reduce_scatter_split_k(ring, device, 1)
    }

    /// As [`OutputConfig::ring_reduce_scatter`], for a split-K producer
    /// (Section 7.7): each element receives `split_k` local partial
    /// updates, so the Tracker thresholds become
    ///
    /// * position 1 (fed by the neighbour's warm-up remote stores,
    ///   themselves `split_k` partials): `2 x split_k`;
    /// * later positions (fed by one reduced DMA update):
    ///   `split_k + 1`.
    ///
    /// With `split_k = 1` this is exactly the plain configuration.
    ///
    /// # Panics
    ///
    /// Panics if `split_k` is zero or `device` is out of range.
    pub fn ring_reduce_scatter_split_k(ring: Ring, device: usize, split_k: u32) -> Self {
        let n = ring.len();
        assert!(device < n, "device out of range");
        assert!(split_k >= 1, "split_k must be at least 1");
        let next = ring.next(device);
        let mut b = ConfigBuilder::new(n);
        for p in 0..n {
            let chunk = (device + n - p) % n;
            let updates = if p == 1 { 2 * split_k } else { split_k + 1 };
            if p == 0 {
                b = b.remote_map_update(chunk, next);
            } else if p < n - 1 {
                b = b.dma_map_update(chunk, next, updates);
            } else {
                b = b.local(chunk, updates);
            }
        }
        b.build()
    }

    /// Derives `device`'s producer-output configuration from a
    /// topology-derived reduce-scatter [`Schedule`] — the single
    /// schedule source shared with the functional collectives and the
    /// timing fabric, so configurations cannot drift from the wire
    /// plan. The rule generalises Figure 12 uniformly:
    ///
    /// * a chunk this device sends **without having received it**
    ///   leaves as fine-grained remote updates (`remote_map`) — the
    ///   ring's warm-up step, and *every* send of the direct schedule;
    /// * a chunk received `r` times before being sent is written
    ///   locally and DMA-updated onward once the Tracker counts
    ///   `r + 1` updates per element (`dma_map`) — the ring's steady
    ///   state, with its threshold of 2;
    /// * the owned chunk stays local with a threshold of one local
    ///   plus every scheduled receive — 2 on a ring, `N` on a direct
    ///   fabric.
    ///
    /// On a ring schedule this reproduces
    /// [`OutputConfig::ring_reduce_scatter`] bit-for-bit (see the
    /// `schedule_derivation_matches_ring_config` test).
    ///
    /// # Panics
    ///
    /// Panics if the schedule is not a reduce-scatter or `device` is
    /// out of range.
    pub fn from_reduce_scatter_schedule(sched: &Schedule, device: usize) -> Self {
        assert_eq!(
            sched.kind(),
            CollectiveKind::ReduceScatter,
            "configuration derivation needs a reduce-scatter schedule"
        );
        let n = sched.devices();
        assert!(device < n, "device out of range");
        let mut receives: Vec<u32> = vec![0; n];
        let mut b = ConfigBuilder::new(n);
        for step in sched.steps() {
            let send = step
                .iter()
                .find(|s| s.src == device)
                .expect("every device sends in every step");
            let prior = receives[send.chunk];
            b = if prior == 0 {
                b.remote_map_update(send.chunk, send.dst)
            } else {
                b.dma_map_update(send.chunk, send.dst, prior + 1)
            };
            for s in step {
                if s.dst == device {
                    receives[s.chunk] += 1;
                }
            }
        }
        let owned = sched.owned_chunk(device);
        b.local(owned, receives[owned] + 1).build()
    }

    /// Direct reduce-scatter on a fully-connected topology
    /// (Section 7.1): every non-owned chunk is remote-updated straight
    /// to its owner as the GEMM stores it; the owned chunk expects one
    /// local plus N−1 remote updates. The collective itself performs
    /// zero dedicated memory accesses.
    pub fn direct_reduce_scatter(num_devices: usize, device: usize) -> Self {
        assert!(device < num_devices, "device out of range");
        let mut b = ConfigBuilder::new(num_devices);
        for chunk in 0..num_devices {
            if chunk == device {
                b = b.local(chunk, num_devices as u32);
            } else {
                b = b.remote_map_update(chunk, chunk);
            }
        }
        b.build()
    }

    /// All-to-all (Section 7.1): chunk `j` of this device's output is
    /// remote-stored to device `j`; only the own chunk stays local.
    pub fn all_to_all(num_devices: usize, device: usize) -> Self {
        assert!(device < num_devices, "device out of range");
        let mut b = ConfigBuilder::new(num_devices);
        for chunk in 0..num_devices {
            if chunk == device {
                b = b.local(chunk, 1);
            } else {
                b = b.remote_map_store(chunk, chunk);
            }
        }
        b.build()
    }
}

/// Builder mirroring the paper's `remote_map` / `dma_map` API
/// (Figure 12). Chunks are declared in the device's computation order.
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    num_chunks: usize,
    routes: Vec<ChunkRoute>,
    chunk_ids: Vec<usize>,
}

impl ConfigBuilder {
    /// Starts a configuration over `num_chunks` chunks.
    pub fn new(num_chunks: usize) -> Self {
        assert!(num_chunks >= 2, "need at least two chunks");
        ConfigBuilder {
            num_chunks,
            routes: Vec::new(),
            chunk_ids: Vec::new(),
        }
    }

    /// `remote_map` with reduce semantics: producer stores update
    /// `device`'s memory directly.
    pub fn remote_map_update(self, chunk: usize, device: usize) -> Self {
        self.push(chunk, ChunkRoute::RemoteUpdate { device })
    }

    /// `remote_map` with store semantics.
    pub fn remote_map_store(self, chunk: usize, device: usize) -> Self {
        self.push(chunk, ChunkRoute::RemoteStore { device })
    }

    /// `dma_map` with update semantics and a trigger threshold.
    pub fn dma_map_update(self, chunk: usize, device: usize, updates_per_element: u32) -> Self {
        assert!(updates_per_element >= 1, "threshold must be positive");
        self.push(
            chunk,
            ChunkRoute::LocalThenDmaUpdate {
                device,
                updates_per_element,
            },
        )
    }

    /// `dma_map` with store semantics (all-gather style).
    pub fn dma_map_store(self, chunk: usize, device: usize) -> Self {
        self.push(chunk, ChunkRoute::LocalThenDmaStore { device })
    }

    /// A chunk kept local (typically the one this device owns).
    pub fn local(self, chunk: usize, updates_per_element: u32) -> Self {
        assert!(updates_per_element >= 1, "threshold must be positive");
        self.push(
            chunk,
            ChunkRoute::LocalOnly {
                updates_per_element,
            },
        )
    }

    fn push(mut self, chunk: usize, route: ChunkRoute) -> Self {
        assert!(chunk < self.num_chunks, "chunk id out of range");
        assert!(
            !self.chunk_ids.contains(&chunk),
            "chunk {chunk} configured twice"
        );
        self.chunk_ids.push(chunk);
        self.routes.push(route);
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics unless every chunk has exactly one route.
    pub fn build(self) -> OutputConfig {
        assert_eq!(
            self.chunk_ids.len(),
            self.num_chunks,
            "every chunk needs a route"
        );
        OutputConfig {
            routes: self.routes,
            chunk_ids: self.chunk_ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_rs_structure_matches_figure_7() {
        let ring = Ring::new(4);
        let cfg = OutputConfig::ring_reduce_scatter(ring, 0);
        assert_eq!(cfg.num_chunks(), 4);
        // Position 0: remote update of chunk 0 to device 1.
        assert_eq!(cfg.chunk_id(0), 0);
        assert_eq!(cfg.route(0), ChunkRoute::RemoteUpdate { device: 1 });
        // Steady state: N-2 = 2 DMA-update chunks.
        let dma_chunks = (0..4).filter(|&p| cfg.route(p).uses_dma()).count();
        assert_eq!(dma_chunks, 2);
        // Final position: the owned chunk, local only, 2 updates.
        assert_eq!(cfg.chunk_id(3), ring.rs_owned_chunk(0));
        assert_eq!(
            cfg.route(3),
            ChunkRoute::LocalOnly {
                updates_per_element: 2
            }
        );
    }

    #[test]
    fn ring_rs_chunks_follow_send_schedule() {
        let ring = Ring::new(8);
        for d in 0..8 {
            let cfg = OutputConfig::ring_reduce_scatter(ring, d);
            for p in 0..7 {
                // The chunk computed at position p is the chunk the
                // device sends at ring step p.
                assert_eq!(cfg.chunk_id(p), ring.rs_send_chunk(d, p));
            }
        }
    }

    #[test]
    fn two_device_ring_has_no_dma_steps() {
        let cfg = OutputConfig::ring_reduce_scatter(Ring::new(2), 1);
        assert_eq!(cfg.route(0), ChunkRoute::RemoteUpdate { device: 0 });
        assert!(cfg.route(1).tracked());
        assert!(!cfg.route(1).uses_dma());
    }

    #[test]
    fn direct_rs_targets_owners() {
        let cfg = OutputConfig::direct_reduce_scatter(4, 2);
        for p in 0..4 {
            let chunk = cfg.chunk_id(p);
            if chunk == 2 {
                assert_eq!(cfg.route(p).updates_per_element(), 4);
            } else {
                assert_eq!(cfg.route(p).destination(), Some(chunk));
                assert!(!cfg.route(p).tracked());
            }
        }
    }

    #[test]
    fn all_to_all_keeps_only_own_chunk() {
        let cfg = OutputConfig::all_to_all(4, 1);
        let local = (0..4).filter(|&p| cfg.route(p).tracked()).count();
        assert_eq!(local, 1);
        assert_eq!(cfg.route(cfg.position_of_chunk(3)).destination(), Some(3));
    }

    #[test]
    fn schedule_derivation_matches_ring_config() {
        // The one-schedule-source guarantee: deriving a device's
        // configuration from the topology schedule reproduces the
        // hand-built ring configuration bit-for-bit.
        for n in [2, 3, 4, 8] {
            let topo =
                t3_topo::Topology::ring(n, &t3_sim::config::SystemConfig::paper_default().link);
            let sched = Schedule::reduce_scatter(&topo);
            let ring = Ring::new(n);
            for d in 0..n {
                assert_eq!(
                    OutputConfig::from_reduce_scatter_schedule(&sched, d),
                    OutputConfig::ring_reduce_scatter(ring, d),
                    "ring n={n} device {d}"
                );
            }
        }
    }

    #[test]
    fn schedule_derivation_on_direct_fabric_remote_maps_everything() {
        let topo = t3_topo::Topology::fully_connected(
            4,
            &t3_sim::config::SystemConfig::paper_default().link,
        );
        let sched = Schedule::reduce_scatter(&topo);
        for d in 0..4 {
            let cfg = OutputConfig::from_reduce_scatter_schedule(&sched, d);
            for p in 0..3 {
                let chunk = cfg.chunk_id(p);
                // Every non-owned chunk streams straight to its owner.
                assert_eq!(
                    cfg.route(p),
                    ChunkRoute::RemoteUpdate {
                        device: sched.owner_of(chunk)
                    }
                );
            }
            // The owned chunk expects one local + N-1 remote updates.
            assert_eq!(cfg.chunk_id(3), (d + 1) % 4);
            assert_eq!(
                cfg.route(3),
                ChunkRoute::LocalOnly {
                    updates_per_element: 4
                }
            );
        }
    }

    #[test]
    fn position_of_chunk_round_trips() {
        let cfg = OutputConfig::ring_reduce_scatter(Ring::new(8), 3);
        for p in 0..8 {
            assert_eq!(cfg.position_of_chunk(cfg.chunk_id(p)), p);
        }
    }

    #[test]
    #[should_panic(expected = "configured twice")]
    fn duplicate_chunk_rejected() {
        let _ = ConfigBuilder::new(2).local(0, 1).local(0, 1);
    }

    #[test]
    #[should_panic(expected = "every chunk needs a route")]
    fn incomplete_config_rejected() {
        let _ = ConfigBuilder::new(3).local(0, 1).build();
    }

    #[test]
    fn route_predicates() {
        let r = ChunkRoute::LocalThenDmaUpdate {
            device: 2,
            updates_per_element: 2,
        };
        assert!(r.tracked());
        assert!(r.uses_dma());
        assert_eq!(r.destination(), Some(2));
        assert_eq!(r.updates_per_element(), 2);
        let s = ChunkRoute::RemoteStore { device: 1 };
        assert!(!s.tracked());
        assert_eq!(s.updates_per_element(), 0);
    }
}
