//! The T3 Tracker (Section 4.2.1, Figure 9).
//!
//! A small structure at the memory controller that counts memory
//! updates to each wavefront's output region and *triggers* the
//! pre-programmed DMA for that region once the expected number of
//! updates (local stores plus remote/DMA updates) has arrived.
//!
//! Faithful to the paper's geometry:
//!
//! * 256 sets, indexed by the workgroup id's 8 low bits (`wg_lsb`);
//! * set-associative entries tagged with `(wg_msb, wf_id)`;
//! * each entry holds the smallest virtual address seen (the DMA needs
//!   it) and an update counter;
//! * the trigger threshold is `wf_tile_size x updates_per_element`,
//!   where `wf_tile_size = (M*N) / #WF` is computed by the driver and
//!   `updates_per_element` comes from the address-space configuration
//!   (2 for ring reduce-scatter; `split_k + 1` for split-K producers,
//!   Section 7.7).
//!
//! Updates are counted in *elements*; the memory-controller integration
//! converts transaction bytes to elements.

use std::fmt;

/// Geometry of one Tracker instance.
///
/// The *threshold* of each entry is not global: it is programmed per
/// chunk by the address-space configuration (`updates_per_element` in
/// each `dma_map`/`local` route — Section 4.4) and passed with each
/// recorded update, because different chunks of one producer can
/// expect different update counts (e.g. split-K producers, Section
/// 7.7, or the warm-up chunk of a fused ring-RS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackerConfig {
    /// Number of sets (paper: 256).
    pub sets: usize,
    /// Maximum entries per set before the structure overflows
    /// (sized for the maximum WGs in flight per producer stage).
    pub ways: usize,
    /// Output elements per wavefront (`wf_tile_size`), as the driver
    /// computes it; used for sizing/reporting.
    pub wf_tile_elems: u64,
}

impl TrackerConfig {
    /// The paper's geometry for a producer with the given WF tile
    /// size.
    pub fn paper(wf_tile_elems: u64) -> Self {
        TrackerConfig {
            sets: 256,
            ways: 64,
            wf_tile_elems,
        }
    }
}

/// Identifies one wavefront's output region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WfId {
    /// Workgroup id.
    pub wg: u64,
    /// Wavefront index within the workgroup (0..8).
    pub wf: u32,
}

/// A fired trigger: this WF's region has seen all expected updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trigger {
    /// The completed wavefront region.
    pub wf_id: WfId,
    /// Smallest virtual address updated in the region (DMA source).
    pub start_addr: u64,
    /// Total element-updates counted (== threshold).
    pub updates: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: (u64, u32), // (wg_msb, wf_id)
    counter: u64,
    start_addr: u64,
    region_elems: u64,
    threshold: u64,
}

/// The Tracker. One per GPU memory controller.
///
/// # Examples
///
/// ```
/// use t3_core::tracker::{Tracker, TrackerConfig, WfId};
///
/// // Ring-RS: two updates per element (local store + incoming copy).
/// let mut tracker = Tracker::new(TrackerConfig::paper(64));
/// let wf = WfId { wg: 7, wf: 0 };
/// // The local store covers the whole 64-element region once...
/// assert!(tracker.record_update(wf, 0x1000, 64, 64, 2).is_none());
/// // ...and the incoming DMA update completes it: the trigger fires.
/// let trigger = tracker.record_update(wf, 0x1000, 64, 64, 2).unwrap();
/// assert_eq!(trigger.start_addr, 0x1000);
/// ```
#[derive(Debug, Clone)]
pub struct Tracker {
    cfg: TrackerConfig,
    sets: Vec<Vec<Entry>>,
    live_entries: usize,
    peak_entries: usize,
    triggers_fired: u64,
}

impl Tracker {
    /// Creates an empty tracker.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero sets/ways or a zero
    /// threshold.
    pub fn new(cfg: TrackerConfig) -> Self {
        assert!(cfg.sets > 0 && cfg.ways > 0, "tracker needs capacity");
        assert!(
            cfg.sets.is_power_of_two(),
            "set count must be a power of two (wg_lsb indexing)"
        );
        Tracker {
            cfg,
            sets: vec![Vec::new(); cfg.sets],
            live_entries: 0,
            peak_entries: 0,
            triggers_fired: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TrackerConfig {
        &self.cfg
    }

    /// Records `elems` element-updates to `wf_id`'s region (whose full
    /// size is `region_elems` elements) starting at `addr`, with the
    /// chunk's programmed `updates_per_element`. Returns the trigger
    /// when the entry reaches its threshold
    /// (`region_elems x updates_per_element`); the entry is then freed
    /// for reuse.
    ///
    /// `region_elems` is normally [`TrackerConfig::wf_tile_elems`]; it
    /// is passed explicitly because edge tiles produce smaller regions
    /// and the driver derives the per-WG extent from the kernel's tile
    /// metadata (Section 4.2.1). `updates_per_element` comes from the
    /// address-space configuration route covering the region (2 for
    /// plain ring-RS; `split_k + 1` and friends for split-K producers,
    /// Section 7.7).
    ///
    /// # Panics
    ///
    /// Panics if a set overflows its associativity (the hardware is
    /// sized so this cannot happen for tiled producers), if an entry
    /// is updated past its threshold (an address-space configuration
    /// bug: more updates arrived than were programmed), or if
    /// `region_elems`/`updates_per_element` disagree between updates
    /// to the same entry.
    pub fn record_update(
        &mut self,
        wf_id: WfId,
        addr: u64,
        elems: u64,
        region_elems: u64,
        updates_per_element: u32,
    ) -> Option<Trigger> {
        if elems == 0 {
            return None;
        }
        assert!(region_elems > 0, "region must be non-empty");
        assert!(updates_per_element > 0, "threshold must be positive");
        let set_idx = (wf_id.wg as usize) & (self.cfg.sets - 1);
        let tag = (wf_id.wg >> 8, wf_id.wf);
        let threshold = region_elems * updates_per_element as u64;
        let ways = self.cfg.ways;
        let set = &mut self.sets[set_idx];
        let entry_pos = match set.iter().position(|e| e.tag == tag) {
            Some(pos) => pos,
            None => {
                assert!(
                    set.len() < ways,
                    "tracker set {set_idx} overflowed {ways} ways"
                );
                set.push(Entry {
                    tag,
                    counter: 0,
                    start_addr: addr,
                    region_elems,
                    threshold,
                });
                self.live_entries += 1;
                self.peak_entries = self.peak_entries.max(self.live_entries);
                set.len() - 1
            }
        };
        let entry = &mut set[entry_pos];
        assert_eq!(
            entry.region_elems, region_elems,
            "WF {wf_id:?}: inconsistent region size"
        );
        assert_eq!(
            entry.threshold, threshold,
            "WF {wf_id:?}: inconsistent programmed threshold"
        );
        entry.counter += elems;
        entry.start_addr = entry.start_addr.min(addr);
        assert!(
            entry.counter <= threshold,
            "WF {:?} over-updated: {} > threshold {}",
            wf_id,
            entry.counter,
            threshold
        );
        if entry.counter == threshold {
            let trigger = Trigger {
                wf_id,
                start_addr: entry.start_addr,
                updates: entry.counter,
            };
            set.swap_remove(entry_pos);
            self.live_entries -= 1;
            self.triggers_fired += 1;
            Some(trigger)
        } else {
            None
        }
    }

    /// Entries currently being tracked.
    pub fn live_entries(&self) -> usize {
        self.live_entries
    }

    /// High-water mark of simultaneous entries (hardware sizing check).
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// Total triggers fired.
    pub fn triggers_fired(&self) -> u64 {
        self.triggers_fired
    }

    /// Pending (untriggered) updates for diagnostics: the counter for
    /// `wf_id`, if tracked.
    pub fn pending(&self, wf_id: WfId) -> Option<u64> {
        let set_idx = (wf_id.wg as usize) & (self.cfg.sets - 1);
        let tag = (wf_id.wg >> 8, wf_id.wf);
        self.sets[set_idx]
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| e.counter)
    }

    /// Approximate hardware size in bytes: per entry a 48-bit address,
    /// a counter, and a tag (the paper reports 19 KB for 256 sets).
    pub fn size_bytes(&self) -> usize {
        // addr (6B) + counter (4B) + tag (2B) per way, per set header.
        self.cfg.sets * self.cfg.ways.min(8) * 9 + self.cfg.sets * 4
    }
}

impl fmt::Display for Tracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tracker[{} sets, {} live, {} peak, {} fired]",
            self.cfg.sets, self.live_entries, self.peak_entries, self.triggers_fired
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(wf_tile: u64) -> TrackerConfig {
        TrackerConfig::paper(wf_tile)
    }

    #[test]
    fn triggers_at_exact_threshold() {
        let mut t = Tracker::new(cfg(4)); // threshold 8 element-updates
        let wf = WfId { wg: 3, wf: 1 };
        assert!(t.record_update(wf, 100, 4, 4, 2).is_none()); // local stores
        let trig = t.record_update(wf, 80, 4, 4, 2).expect("must fire");
        assert_eq!(trig.wf_id, wf);
        assert_eq!(trig.start_addr, 80); // smallest address wins
        assert_eq!(trig.updates, 8);
        assert_eq!(t.live_entries(), 0);
        assert_eq!(t.triggers_fired(), 1);
    }

    #[test]
    fn partial_updates_accumulate() {
        let mut t = Tracker::new(cfg(16)); // threshold 32
        let wf = WfId { wg: 0, wf: 0 };
        for i in 0..31 {
            assert!(t.record_update(wf, 1000 + i, 1, 16, 2).is_none());
        }
        assert_eq!(t.pending(wf), Some(31));
        assert!(t.record_update(wf, 999, 1, 16, 2).is_some());
        assert_eq!(t.pending(wf), None);
    }

    #[test]
    fn distinct_wfs_tracked_independently() {
        let mut t = Tracker::new(cfg(2));
        let a = WfId { wg: 5, wf: 0 };
        let b = WfId { wg: 5, wf: 1 };
        assert!(t.record_update(a, 0, 2, 2, 2).is_none());
        assert!(t.record_update(b, 64, 2, 2, 2).is_none());
        assert_eq!(t.live_entries(), 2);
        assert!(t.record_update(a, 0, 2, 2, 2).is_some());
        assert!(t.record_update(b, 64, 2, 2, 2).is_some());
    }

    #[test]
    fn wg_lsb_collisions_disambiguated_by_tag() {
        // WGs 1 and 257 share wg_lsb (set) but differ in wg_msb (tag).
        let mut t = Tracker::new(cfg(2));
        let low = WfId { wg: 1, wf: 0 };
        let high = WfId { wg: 257, wf: 0 };
        assert!(t.record_update(low, 0, 1, 2, 1).is_none());
        assert!(t.record_update(high, 0, 1, 2, 1).is_none());
        assert_eq!(t.live_entries(), 2);
        assert!(t.record_update(high, 0, 1, 2, 1).is_some());
        assert_eq!(t.pending(low), Some(1));
    }

    #[test]
    fn entry_reuse_after_trigger() {
        let mut t = Tracker::new(cfg(1));
        let wf = WfId { wg: 9, wf: 2 };
        assert!(t.record_update(wf, 0, 1, 1, 1).is_some());
        // Same WF id can be re-tracked (e.g. next kernel invocation).
        assert!(t.record_update(wf, 4, 1, 1, 1).is_some());
        assert_eq!(t.triggers_fired(), 2);
    }

    #[test]
    fn peak_entries_reflects_concurrency() {
        let mut t = Tracker::new(cfg(1));
        for wg in 0..10 {
            let _ = t.record_update(WfId { wg, wf: 0 }, wg * 8, 1, 1, 2);
        }
        assert_eq!(t.peak_entries(), 10);
        for wg in 0..10 {
            let _ = t.record_update(WfId { wg, wf: 0 }, wg * 8, 1, 1, 2);
        }
        assert_eq!(t.live_entries(), 0);
        assert_eq!(t.peak_entries(), 10);
    }

    #[test]
    #[should_panic(expected = "over-updated")]
    fn over_update_is_a_configuration_bug() {
        let mut t = Tracker::new(cfg(1));
        let wf = WfId { wg: 0, wf: 0 };
        let _ = t.record_update(wf, 0, 2, 1, 1);
    }

    #[test]
    fn zero_element_update_is_noop() {
        let mut t = Tracker::new(cfg(1));
        assert!(t.record_update(WfId { wg: 0, wf: 0 }, 0, 0, 1, 1).is_none());
        assert_eq!(t.live_entries(), 0);
    }

    #[test]
    fn size_is_around_19kb_for_paper_geometry() {
        let t = Tracker::new(TrackerConfig::paper(2048));
        let kb = t.size_bytes() as f64 / 1024.0;
        assert!(kb > 10.0 && kb < 30.0, "got {kb} KB");
    }

    #[test]
    fn split_k_threshold_follows_section_7_7() {
        // Split-K of 4 plus one incoming DMA update: 5 updates per
        // element, programmed per chunk via the address map.
        let mut t = Tracker::new(cfg(64));
        let wf = WfId { wg: 0, wf: 0 };
        for _ in 0..4 {
            assert!(t.record_update(wf, 0, 64, 64, 5).is_none());
        }
        assert!(t.record_update(wf, 0, 64, 64, 5).is_some());
    }

    #[test]
    #[should_panic(expected = "inconsistent programmed threshold")]
    fn mixed_thresholds_for_one_entry_rejected() {
        let mut t = Tracker::new(cfg(8));
        let wf = WfId { wg: 0, wf: 0 };
        let _ = t.record_update(wf, 0, 2, 8, 2);
        let _ = t.record_update(wf, 0, 2, 8, 3);
    }
}
