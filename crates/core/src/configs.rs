//! The evaluated configurations of Section 5.3.
//!
//! Every sublayer experiment in the paper compares five ways of
//! executing a tensor-sliced GEMM and its all-reduce (= reduce-scatter
//! + all-gather):
//!
//! * [`Configuration::Sequential`] — today's systems: GEMM kernel,
//!   then ring-RS, then ring-AG, serialised.
//! * [`Configuration::T3`] — fused GEMM-RS (track & trigger + NMC)
//!   with naive round-robin memory arbitration, then sequential AG.
//! * [`Configuration::T3Mca`] — T3 plus the communication-aware
//!   memory-controller arbitration policy (Section 4.5).
//! * [`Configuration::IdealOverlap`] — "Ideal-GEMM-RS-Overlap": a
//!   perfect software overlap with no resource contention or
//!   dependencies; `max(GEMM, RS) + AG` of isolated runs.
//! * [`Configuration::IdealRsNmc`] — "Ideal-RS+NMC": the above with
//!   the RS itself accelerated by near-memory reductions.

use crate::engine::{run_fused_gemm_rs, FusedOptions, PolicyChoice};
use t3_gpu::collective::{CollectiveKind, RingCollective};
use t3_gpu::engine::{run_gemm_isolated_in_mode, WritePolicy};
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_mem::nmc::ReductionSubstrate;
use t3_sim::config::SystemConfig;
use t3_sim::stats::TrafficStats;
use t3_sim::{Cycle, SimMode};

/// One of the paper's evaluated configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Configuration {
    /// Baseline: GEMM, then RS, then AG, serialised.
    Sequential,
    /// Fused GEMM-RS with round-robin arbitration + sequential AG.
    T3,
    /// Fused GEMM-RS with the MCA policy + sequential AG.
    T3Mca,
    /// Perfect overlap of isolated GEMM and RS + sequential AG.
    IdealOverlap,
    /// Perfect overlap with NMC-accelerated RS + sequential AG.
    IdealRsNmc,
}

impl Configuration {
    /// All configurations, in the paper's reporting order.
    pub const ALL: [Configuration; 5] = [
        Configuration::Sequential,
        Configuration::T3,
        Configuration::T3Mca,
        Configuration::IdealOverlap,
        Configuration::IdealRsNmc,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Configuration::Sequential => "Sequential",
            Configuration::T3 => "T3",
            Configuration::T3Mca => "T3-MCA",
            Configuration::IdealOverlap => "Ideal-GEMM-RS-Overlap",
            Configuration::IdealRsNmc => "Ideal-RS+NMC",
        }
    }

    /// Runs one sliced sublayer GEMM + all-reduce under this
    /// configuration on `sys`.
    ///
    /// # Examples
    ///
    /// ```
    /// use t3_core::configs::Configuration;
    /// use t3_gpu::gemm::GemmShape;
    /// use t3_sim::config::SystemConfig;
    ///
    /// let sys = SystemConfig::paper_default();
    /// // A small tensor-sliced GEMM (TP=8 slice of K).
    /// let shape = GemmShape::new(512, 1024, 8 * 1024).tp_sliced(8);
    /// let seq = Configuration::Sequential.run(&sys, &shape);
    /// let t3 = Configuration::T3Mca.run(&sys, &shape);
    /// assert!(t3.total_cycles < seq.total_cycles);
    /// ```
    pub fn run(self, sys: &SystemConfig, shape: &GemmShape) -> SublayerOutcome {
        self.run_in_mode(sys, shape, SimMode::default())
    }

    /// [`Configuration::run`] with an explicit [`SimMode`] for the
    /// cycle-stepped components (the collective baselines are analytic
    /// and mode-independent). Both modes are byte-identical.
    pub fn run_in_mode(
        self,
        sys: &SystemConfig,
        shape: &GemmShape,
        mode: SimMode,
    ) -> SublayerOutcome {
        let grid = GemmGrid::new(&sys.gpu, *shape);
        let payload = shape.output_bytes();
        let ag = RingCollective::baseline(CollectiveKind::AllGather, payload, sys).simulate(sys);
        match self {
            Configuration::Sequential => {
                let gemm = run_gemm_isolated_in_mode(sys, grid, WritePolicy::CachedLocal, mode);
                let rs = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, sys)
                    .simulate(sys);
                let mut stats = gemm.stats.clone();
                stats.merge(&rs.stats);
                stats.merge(&ag.stats);
                SublayerOutcome {
                    config: self,
                    gemm_cycles: gemm.cycles,
                    rs_cycles: rs.cycles,
                    ag_cycles: ag.cycles,
                    total_cycles: gemm.cycles + rs.cycles + ag.cycles,
                    stats,
                }
            }
            Configuration::T3 | Configuration::T3Mca => {
                let policy = if self == Configuration::T3 {
                    PolicyChoice::RoundRobin
                } else {
                    PolicyChoice::McaDynamic
                };
                let fused = run_fused_gemm_rs(
                    sys,
                    grid,
                    &FusedOptions {
                        policy,
                        mode,
                        ..FusedOptions::default()
                    },
                );
                let mut stats = fused.stats.clone();
                stats.merge(&ag.stats);
                SublayerOutcome {
                    config: self,
                    gemm_cycles: fused.cycles,
                    rs_cycles: 0,
                    ag_cycles: ag.cycles,
                    total_cycles: fused.cycles + ag.cycles,
                    stats,
                }
            }
            Configuration::IdealOverlap | Configuration::IdealRsNmc => {
                let gemm = run_gemm_isolated_in_mode(sys, grid, WritePolicy::CachedLocal, mode);
                let rs = RingCollective::baseline(CollectiveKind::ReduceScatter, payload, sys)
                    .with_nmc(self == Configuration::IdealRsNmc)
                    .simulate(sys);
                let mut stats = gemm.stats.clone();
                stats.merge(&rs.stats);
                stats.merge(&ag.stats);
                SublayerOutcome {
                    config: self,
                    gemm_cycles: gemm.cycles,
                    rs_cycles: rs.cycles,
                    ag_cycles: ag.cycles,
                    total_cycles: gemm.cycles.max(rs.cycles) + ag.cycles,
                    stats,
                }
            }
        }
    }

    /// The fused-run options equivalent to this configuration, when it
    /// is a T3 variant.
    pub fn fused_options(self) -> Option<FusedOptions> {
        match self {
            Configuration::T3 => Some(FusedOptions {
                policy: PolicyChoice::RoundRobin,
                substrate: ReductionSubstrate::NearMemory,
                stagger: true,
                timeseries_bucket: None,
                mode: SimMode::default(),
            }),
            Configuration::T3Mca => Some(FusedOptions {
                policy: PolicyChoice::McaDynamic,
                substrate: ReductionSubstrate::NearMemory,
                stagger: true,
                timeseries_bucket: None,
                mode: SimMode::default(),
            }),
            _ => None,
        }
    }
}

/// Result of running a sliced sublayer under one configuration.
#[derive(Debug, Clone)]
pub struct SublayerOutcome {
    /// Which configuration produced this.
    pub config: Configuration,
    /// GEMM cycles (for T3 variants: the fused GEMM+RS span).
    pub gemm_cycles: Cycle,
    /// Exposed reduce-scatter cycles (0 for T3 variants: it is hidden
    /// inside the fused span).
    pub rs_cycles: Cycle,
    /// All-gather cycles (always sequential).
    pub ag_cycles: Cycle,
    /// End-to-end cycles for the sublayer.
    pub total_cycles: Cycle,
    /// Per-GPU DRAM traffic.
    pub stats: TrafficStats,
}

impl SublayerOutcome {
    /// Speedup of this outcome relative to `baseline`.
    pub fn speedup_over(&self, baseline: &SublayerOutcome) -> f64 {
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// Data-movement reduction vs `baseline` (positive = less DRAM
    /// traffic), as a fraction.
    pub fn traffic_reduction_vs(&self, baseline: &SublayerOutcome) -> f64 {
        1.0 - self.stats.total() as f64 / baseline.stats.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_sim::stats::TrafficClass;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    /// A T-NLG-like FC-2 sublayer scaled down ~4x in tokens to keep
    /// debug-mode tests quick: still many stages, LLC-exceeding B.
    fn shape() -> GemmShape {
        GemmShape::new(2048, 4256, 2128)
    }

    #[test]
    fn t3_mca_beats_sequential_and_respects_ideal() {
        let s = sys();
        let seq = Configuration::Sequential.run(&s, &shape());
        let t3 = Configuration::T3.run(&s, &shape());
        let mca = Configuration::T3Mca.run(&s, &shape());
        let ideal = Configuration::IdealOverlap.run(&s, &shape());
        assert!(
            t3.total_cycles < seq.total_cycles,
            "T3 must beat Sequential"
        );
        assert!(
            mca.total_cycles <= (t3.total_cycles as f64 * 1.02) as u64,
            "T3-MCA must not lose to T3"
        );
        assert!(
            ideal.total_cycles <= seq.total_cycles,
            "ideal overlap cannot lose to sequential"
        );
        // The paper's usual ordering is ideal >= T3-MCA >= T3, but
        // T3 variants can legitimately exceed Ideal-GEMM-RS-Overlap on
        // LLC-sensitive layers (Section 6.1.2: the "ideal" GEMM still
        // suffers output-write cache pollution; T3's uncached stores do
        // not). Allow that, but bound it.
        let su_t3 = t3.speedup_over(&seq);
        let su_mca = mca.speedup_over(&seq);
        let su_ideal = ideal.speedup_over(&seq);
        assert!(
            su_ideal * 1.15 >= su_mca,
            "ideal {su_ideal} vs mca {su_mca}"
        );
        assert!(su_mca * 1.02 >= su_t3, "mca {su_mca} vs t3 {su_t3}");
        assert!(su_t3 > 1.0);
    }

    #[test]
    fn ideal_rs_nmc_at_least_matches_ideal_overlap() {
        let s = sys();
        let a = Configuration::IdealOverlap.run(&s, &shape());
        let b = Configuration::IdealRsNmc.run(&s, &shape());
        assert!(b.total_cycles <= a.total_cycles);
    }

    #[test]
    fn t3_reduces_data_movement() {
        let s = sys();
        let seq = Configuration::Sequential.run(&s, &shape());
        let mca = Configuration::T3Mca.run(&s, &shape());
        let reduction = mca.traffic_reduction_vs(&seq);
        // Paper: up to 36%, average 22% across sublayers.
        assert!(
            reduction > 0.10 && reduction < 0.45,
            "traffic reduction {reduction:.3} out of plausible band"
        );
        // RS reads drop sharply (paper: ~2.4x geomean).
        let rs_ratio = seq.stats.bytes(TrafficClass::RsRead) as f64
            / mca.stats.bytes(TrafficClass::RsRead) as f64;
        assert!(rs_ratio > 1.8, "RS read reduction {rs_ratio:.2}x too small");
    }

    #[test]
    fn sequential_distribution_components_sum() {
        let s = sys();
        let seq = Configuration::Sequential.run(&s, &shape());
        assert_eq!(
            seq.total_cycles,
            seq.gemm_cycles + seq.rs_cycles + seq.ag_cycles
        );
        assert!(seq.rs_cycles > 0 && seq.ag_cycles > 0);
    }

    #[test]
    fn ag_is_identical_across_configs() {
        let s = sys();
        let seq = Configuration::Sequential.run(&s, &shape());
        let mca = Configuration::T3Mca.run(&s, &shape());
        assert_eq!(seq.ag_cycles, mca.ag_cycles);
        assert_eq!(
            seq.stats.bytes(TrafficClass::AgRead),
            mca.stats.bytes(TrafficClass::AgRead)
        );
    }

    #[test]
    fn names_and_fused_options() {
        assert_eq!(Configuration::T3Mca.name(), "T3-MCA");
        assert!(Configuration::T3.fused_options().is_some());
        assert!(Configuration::Sequential.fused_options().is_none());
        assert_eq!(Configuration::ALL.len(), 5);
    }
}
