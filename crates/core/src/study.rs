//! The paper's side studies.
//!
//! * [`cu_split_study`] — Figure 6: how much of the ideal
//!   overlap-speedup survives when the GEMM and the all-reduce must
//!   *share* compute units (72-8 and 64-16 splits vs an ideal where
//!   the GEMM keeps all 80 CUs and the AR is free).
//! * [`rs_validation`] — Figure 14: the multi-GPU reduce-scatter
//!   simulation against a first-principles bandwidth model over
//!   6–192 MB on four GPUs (the paper reports 6% geomean error
//!   against MI210 hardware).
//! * [`future_hw_study`] — Figure 20 / Section 7.5: T3's benefit on a
//!   "GPU-2X-CU" future system whose compute scales 2x while the
//!   network stays fixed.
//! * [`generation_phase_study`] — Section 7.3: the token-generation
//!   phase of inference has tiny, latency-bound all-reduces; T3 still
//!   hides them inside the (equally small) GEMMs.
//! * [`nmc_following_ops_study`] — Section 7.6: memory-intensive ops
//!   that follow an all-reduce (residual/dropout/optimizer) can run
//!   near-memory on the *reduced sub-array* before the all-gather,
//!   removing the N-fold redundancy.
//! * [`coarse_overlap_study`] — Sections 3.2/7.2: even *coarse-grained*
//!   overlap (data/pipeline parallelism hiding collectives behind
//!   independent kernels) contends for memory bandwidth; T3's MCA
//!   policy reduces that contention too.

use crate::configs::Configuration;
use t3_gpu::collective::{reference_ring_rs_cycles, CollectiveKind, RingCollective};
use t3_gpu::engine::{run_gemm_isolated, WritePolicy};
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_sim::config::SystemConfig;
use t3_sim::{Bytes, Cycle};

/// One row of the Figure 6 CU-split study.
#[derive(Debug, Clone, PartialEq)]
pub struct CuSplitRow {
    /// Split label, e.g. `"72-8"` (GEMM CUs - AR CUs) or `"ideal"`.
    pub label: String,
    /// GEMM time with its CU share, normalised to 80-CU GEMM time.
    pub gemm_norm: f64,
    /// All-reduce time with its CU share, normalised to 80-CU AR time.
    pub ar_norm: f64,
    /// Speedup of overlapped execution (`max(GEMM, AR)`) over
    /// sequential execution with all CUs for each.
    pub potential_overlap_speedup: f64,
}

/// Runs the Figure 6 study for one sliced sublayer GEMM: splits CUs
/// between the GEMM and its all-reduce and reports the potential
/// overlap speedup for each split, plus the no-sharing ideal.
pub fn cu_split_study(sys: &SystemConfig, shape: &GemmShape) -> Vec<CuSplitRow> {
    let payload = shape.output_bytes();
    let gemm_with = |cus: u32| -> Cycle {
        let mut s = sys.clone();
        s.gpu.num_cus = cus;
        let grid = GemmGrid::new(&s.gpu, *shape);
        run_gemm_isolated(&s, grid, WritePolicy::CachedLocal).cycles
    };
    let ar_with = |cus: u32| -> Cycle {
        RingCollective::baseline(CollectiveKind::AllReduce, payload, sys)
            .with_cu_count(cus)
            .simulate(sys)
            .cycles
    };
    let gemm_full = gemm_with(sys.gpu.num_cus);
    let ar_full = ar_with(sys.gpu.num_cus);
    let sequential = gemm_full + ar_full;
    let mut rows = Vec::new();
    for (g_cus, a_cus) in [(72u32, 8u32), (64, 16)] {
        let g = gemm_with(g_cus);
        let a = ar_with(a_cus);
        rows.push(CuSplitRow {
            label: format!("{g_cus}-{a_cus}"),
            gemm_norm: g as f64 / gemm_full as f64,
            ar_norm: a as f64 / ar_full as f64,
            potential_overlap_speedup: sequential as f64 / g.max(a) as f64,
        });
    }
    rows.push(CuSplitRow {
        label: "ideal".to_string(),
        gemm_norm: 1.0,
        ar_norm: 1.0,
        potential_overlap_speedup: sequential as f64 / gemm_full.max(ar_full) as f64,
    });
    rows
}

/// One row of the Figure 14 validation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationRow {
    /// Payload size in bytes.
    pub payload_bytes: Bytes,
    /// Simulated ring reduce-scatter time.
    pub simulated_cycles: Cycle,
    /// First-principles bandwidth-model time.
    pub reference_cycles: Cycle,
    /// `max(sim/ref, ref/sim) - 1`.
    pub error: f64,
}

/// Runs the Figure 14 validation: simulated ring-RS vs the bandwidth
/// reference over the given payload sizes (paper: 6–192 MB on 4 GPUs).
pub fn rs_validation(sys: &SystemConfig, payload_sizes: &[Bytes]) -> Vec<ValidationRow> {
    payload_sizes
        .iter()
        .map(|&bytes| {
            let sim = RingCollective::baseline(CollectiveKind::ReduceScatter, bytes, sys)
                .simulate(sys)
                .cycles;
            let reference = reference_ring_rs_cycles(sys, bytes);
            ValidationRow {
                payload_bytes: bytes,
                simulated_cycles: sim,
                reference_cycles: reference,
                error: (sim as f64 / reference as f64).max(reference as f64 / sim as f64) - 1.0,
            }
        })
        .collect()
}

/// Geomean validation error across rows.
pub fn validation_geomean_error(rows: &[ValidationRow]) -> f64 {
    t3_sim::geomean(&rows.iter().map(|r| 1.0 + r.error).collect::<Vec<_>>()) - 1.0
}

/// One sublayer's T3-MCA speedup on the base and 2x-compute systems
/// (Figure 20).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FutureHwRow {
    /// T3-MCA speedup over Sequential on the base system.
    pub base_speedup: f64,
    /// T3-MCA speedup over Sequential on GPU-2X-CU.
    pub future_speedup: f64,
}

/// Runs Figure 20's comparison for one sliced sublayer shape.
pub fn future_hw_study(shape: &GemmShape, num_gpus: usize) -> FutureHwRow {
    let speedup = |sys: &SystemConfig| {
        let seq = Configuration::Sequential.run(sys, shape);
        let mca = Configuration::T3Mca.run(sys, shape);
        mca.speedup_over(&seq)
    };
    let base = SystemConfig::paper_default().with_num_gpus(num_gpus);
    let future = SystemConfig::future_2x_cu().with_num_gpus(num_gpus);
    FutureHwRow {
        base_speedup: speedup(&base),
        future_speedup: speedup(&future),
    }
}

/// Result of the coarse-grained overlap study (Section 3.2): a GEMM
/// executing while background communication traffic (e.g. a
/// data-parallel gradient reduce-scatter) shares its memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarseOverlapRow {
    /// GEMM cycles with no concurrent communication.
    pub isolated_gemm_cycles: Cycle,
    /// GEMM cycles with the communication stream active.
    pub contended_gemm_cycles: Cycle,
    /// GEMM slowdown factor (paper cites up to 1.4x for TP-style
    /// concurrency, more for memory-intensive workloads).
    pub gemm_slowdown: f64,
}

/// Measures GEMM slowdown when `comm_bytes` of background
/// communication traffic (half reads, half NMC updates) shares the
/// memory controller under `policy`.
pub fn coarse_overlap_study(
    sys: &SystemConfig,
    shape: &GemmShape,
    comm_bytes: Bytes,
    policy: crate::engine::PolicyChoice,
) -> CoarseOverlapRow {
    use t3_gpu::engine::{route_stage_stores, GemmEngine, GemmEvent, WritePolicy};
    use t3_mem::controller::{MemoryController, StreamId};
    use t3_mem::llc::Llc;
    use t3_sim::stats::TrafficClass;

    let grid = GemmGrid::new(&sys.gpu, *shape);
    let isolated = run_gemm_isolated(sys, grid.clone(), WritePolicy::CachedLocal);

    // Contended run: the communication stream receives its traffic in
    // chunk-sized bursts spread over the expected GEMM duration.
    let mut mc = MemoryController::new(&sys.mem, build_policy(policy, sys));
    let mut llc = Llc::new(&sys.mem);
    let mut gemm = GemmEngine::new(&sys.gpu, grid.clone());
    let bursts = 16u64.min(comm_bytes / sys.mem.txn_bytes).max(1);
    let burst_bytes = comm_bytes / bursts;
    let burst_interval = (isolated.cycles / (bursts + 1)).max(1);
    let mut issued = 0u64;
    let mut now: Cycle = 0;
    let contended = loop {
        mc.step(now, None);
        if issued < bursts && now >= (issued + 1) * burst_interval {
            let class = if issued.is_multiple_of(2) {
                TrafficClass::RsRead
            } else {
                TrafficClass::RsUpdate
            };
            mc.enqueue(StreamId::Comm, class, burst_bytes, 1.0);
            issued += 1;
        }
        match gemm.step(now, &mut mc, &mut llc) {
            GemmEvent::Idle => {}
            GemmEvent::StageStoresIssued {
                wg_start, wg_end, ..
            } => route_stage_stores(
                &grid,
                wg_start,
                wg_end,
                WritePolicy::CachedLocal,
                &mut mc,
                &mut llc,
            ),
            GemmEvent::Finished => {
                // Match run_gemm_isolated's accounting: flush dirty
                // output lines and drain the compute stream (the comm
                // backlog is not the GEMM's problem).
                let flush = llc.flush_dirty();
                mc.enqueue(StreamId::Compute, TrafficClass::GemmWrite, flush, 1.0);
                while mc.pending_bytes(StreamId::Compute) > 0 {
                    now += 1;
                    mc.step(now, None);
                    assert!(now < 4_000_000_000, "drain failed to converge");
                }
                break now;
            }
        }
        now += 1;
        assert!(now < 4_000_000_000, "contended GEMM failed to converge");
    };
    CoarseOverlapRow {
        isolated_gemm_cycles: isolated.cycles,
        contended_gemm_cycles: contended,
        gemm_slowdown: contended as f64 / isolated.cycles as f64,
    }
}

fn build_policy(
    policy: crate::engine::PolicyChoice,
    sys: &SystemConfig,
) -> Box<dyn t3_mem::arbiter::ArbitrationPolicy> {
    use crate::engine::PolicyChoice;
    use t3_mem::arbiter::{ComputeFirstPolicy, McaPolicy, RoundRobinPolicy};
    match policy {
        PolicyChoice::RoundRobin => Box::new(RoundRobinPolicy::new()),
        PolicyChoice::ComputeFirst => Box::new(ComputeFirstPolicy::new()),
        PolicyChoice::McaDynamic => Box::new(McaPolicy::new(&sys.mem)),
        PolicyChoice::McaFixed(t) => Box::new(McaPolicy::with_fixed_threshold(t)),
    }
}

/// Result of the generation-phase study (Section 7.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationRow {
    /// Tokens processed per iteration (= batched sequences).
    pub tokens: u64,
    /// Sequential sublayer cycles.
    pub sequential_cycles: Cycle,
    /// T3-MCA sublayer cycles.
    pub t3_cycles: Cycle,
    /// Speedup.
    pub speedup: f64,
}

/// Runs one generation-phase sublayer: a skinny GEMM (`tokens` rows,
/// one per in-flight sequence) with its tiny, latency-bound
/// all-reduce, under Sequential and T3-MCA.
pub fn generation_phase_study(
    sys: &SystemConfig,
    hidden: u64,
    tokens: u64,
    tp: u64,
) -> GenerationRow {
    let shape = GemmShape::new(tokens, hidden, (4 * hidden).div_ceil(tp));
    let seq = Configuration::Sequential.run(sys, &shape);
    let t3 = Configuration::T3Mca.run(sys, &shape);
    GenerationRow {
        tokens,
        sequential_cycles: seq.total_cycles,
        t3_cycles: t3.total_cycles,
        speedup: t3.speedup_over(&seq),
    }
}

/// Result of the NMC-for-following-ops study (Section 7.6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FollowingOpsRow {
    /// Cycles for the following element-wise op in the baseline:
    /// every device sweeps the full all-reduced array.
    pub baseline_cycles: Cycle,
    /// Cycles with T3 + NMC: each device sweeps only its reduced
    /// sub-array before the all-gather.
    pub nmc_cycles: Cycle,
    /// Fraction of the op's time eliminated.
    pub savings: f64,
}

/// Models a memory-bound op of `passes` sweeps over an `array_bytes`
/// all-reduce output, redundantly executed per device (baseline) vs
/// executed on the owned 1/N sub-array near memory before the
/// all-gather (Section 7.6).
pub fn nmc_following_ops_study(
    sys: &SystemConfig,
    array_bytes: Bytes,
    passes: f64,
) -> FollowingOpsRow {
    assert!(passes > 0.0, "op must touch memory at least once");
    let bw = sys.mem.bytes_per_cycle();
    let baseline = (passes * array_bytes as f64 / bw).ceil() as Cycle; // t3-lint: allow(float-cycles) -- Table 3 analytic bound: one ceil, no accumulation
    let nmc = (passes * array_bytes as f64 / (sys.num_gpus as f64 * bw)).ceil() as Cycle; // t3-lint: allow(float-cycles) -- same bound scaled by GPU count; rounding identical to baseline
    FollowingOpsRow {
        baseline_cycles: baseline,
        nmc_cycles: nmc,
        savings: 1.0 - nmc as f64 / baseline as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    /// Scaled-down FC-2-like sublayer with balanced GEMM:AR times
    /// (the regime the paper's Figure 6 sublayers sit in).
    fn shape() -> GemmShape {
        GemmShape::new(2048, 3072, 1152)
    }

    #[test]
    fn cu_split_matches_figure_6_shape() {
        let s = sys();
        let rows = cu_split_study(&s, &shape());
        assert_eq!(rows.len(), 3);
        let r72 = &rows[0];
        let r64 = &rows[1];
        let ideal = &rows[2];
        // 8 CUs slow the AR substantially; 16 CUs barely.
        assert!(r72.ar_norm > 1.2, "8-CU AR norm {}", r72.ar_norm);
        assert!(r64.ar_norm < 1.15, "16-CU AR norm {}", r64.ar_norm);
        // Fewer CUs slow the GEMM.
        assert!(r64.gemm_norm > r72.gemm_norm * 0.99);
        assert!(r64.gemm_norm > 1.05);
        // Ordering of potential speedups: ideal > 64-16 > 72-8 is the
        // paper's qualitative result (72-8 starves the AR).
        assert!(ideal.potential_overlap_speedup > r64.potential_overlap_speedup);
        assert!(r64.potential_overlap_speedup > r72.potential_overlap_speedup);
        assert!(ideal.potential_overlap_speedup > 1.2);
    }

    #[test]
    fn validation_error_is_small() {
        let s = sys().with_num_gpus(4);
        let mb = 1u64 << 20;
        let rows = rs_validation(&s, &[6 * mb, 12 * mb, 24 * mb, 48 * mb, 96 * mb, 192 * mb]);
        let err = validation_geomean_error(&rows);
        assert!(err < 0.08, "geomean validation error {err:.3} too high");
        for r in &rows {
            assert!(r.simulated_cycles > 0 && r.reference_cycles > 0);
        }
    }

    #[test]
    fn validation_scales_with_payload() {
        let s = sys().with_num_gpus(4);
        let mb = 1u64 << 20;
        let rows = rs_validation(&s, &[6 * mb, 192 * mb]);
        assert!(rows[1].simulated_cycles > rows[0].simulated_cycles * 20);
    }

    #[test]
    fn coarse_overlap_contention_and_mca_relief() {
        use crate::engine::PolicyChoice;
        let s = sys();
        // A memory-sensitive GEMM with substantial background traffic.
        let shape = GemmShape::new(2048, 4256, 2128);
        let comm = 128 << 20;
        let rr = coarse_overlap_study(&s, &shape, comm, PolicyChoice::RoundRobin);
        let mca = coarse_overlap_study(&s, &shape, comm, PolicyChoice::McaDynamic);
        // Paper Section 3.2: concurrency slows the producer noticeably.
        assert!(
            rr.gemm_slowdown > 1.03,
            "round-robin contention too small: {:.3}",
            rr.gemm_slowdown
        );
        // MCA protects the producer.
        assert!(
            mca.gemm_slowdown < rr.gemm_slowdown,
            "MCA {:.3} must beat round-robin {:.3}",
            mca.gemm_slowdown,
            rr.gemm_slowdown
        );
        assert!(mca.contended_gemm_cycles >= mca.isolated_gemm_cycles);
    }

    #[test]
    fn generation_phase_still_benefits() {
        // Section 7.3: tiny token-generation GEMMs + latency-bound ARs
        // still overlap; T3 must not regress and usually helps by
        // removing the collective's kernel-step overheads.
        let s = sys();
        for tokens in [8u64, 32, 128] {
            let row = generation_phase_study(&s, 4256, tokens, 8);
            assert!(
                row.speedup > 0.98,
                "{tokens} tokens: generation speedup {:.3} regressed",
                row.speedup
            );
        }
        // Larger batches behave like small prompt runs: clear wins.
        let big = generation_phase_study(&s, 4256, 512, 8);
        assert!(big.speedup > 1.05, "batched generation {:.3}", big.speedup);
    }

    #[test]
    fn following_ops_savings_scale_with_devices() {
        let s8 = sys();
        let s16 = sys().with_num_gpus(16);
        let row8 = nmc_following_ops_study(&s8, 64 << 20, 4.0);
        let row16 = nmc_following_ops_study(&s16, 64 << 20, 4.0);
        // Savings approach (N-1)/N.
        assert!((row8.savings - 0.875).abs() < 0.01, "{}", row8.savings);
        assert!(row16.savings > row8.savings);
        assert!(row8.nmc_cycles < row8.baseline_cycles);
    }

    #[test]
    fn future_hw_helps_compute_heavy_layers() {
        // A large, compute-dominated layer: doubling CUs shortens the
        // GEMM, making communication relatively larger, so T3's
        // overlap benefit grows (Figure 20, FC-2 trend).
        let row = future_hw_study(&GemmShape::new(2048, 4256, 2128), 8);
        assert!(row.base_speedup > 1.0);
        assert!(row.future_speedup > 1.0);
        assert!(
            row.future_speedup > row.base_speedup * 0.95,
            "future {} vs base {}",
            row.future_speedup,
            row.base_speedup
        );
    }
}
