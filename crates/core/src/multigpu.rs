//! Explicit multi-GPU simulation of the fused GEMM + reduce-scatter —
//! every GPU simulated, real cross-GPU traffic on a real fabric.
//!
//! The paper (and [`crate::engine`]) exploit the homogeneity of
//! tensor-parallel execution to simulate one GPU and mirror its
//! outgoing traffic as the incoming stream (Section 5.1.1). This
//! module drops that assumption: all `N` GPUs run their own GEMM
//! engine, memory controller, LLC, Tracker and DMA engine, and every
//! chunk travels over a [`t3_topo::Fabric`] from its producer to its
//! consumer — contending per hop with everything else on the wire.
//!
//! Two schedules, one source ([`t3_topo::Schedule`]):
//!
//! * **Ring fabrics** run the ascending mirror-image ring exactly as
//!   before (its purpose is to *validate the mirrored methodology*):
//!   device `d` computes global chunk `(d + p) mod N` at local
//!   position `p` and sends to `prev(d)`. Position 0 leaves as
//!   fine-grained remote stores; positions `1..=N-2` as
//!   Tracker-triggered DMA updates; the last position is the owned
//!   chunk. The per-position routes come from the schedule-derived
//!   [`OutputConfig`], which reproduces the hand-built ring
//!   configuration bit-for-bit.
//! * **Every other fabric** (switch, torus, hierarchical,
//!   fully-connected) runs the direct schedule (Section 7.1): each
//!   non-owned chunk streams straight to its owner as fine-grained
//!   remote updates over its (possibly multi-hop) route, and the
//!   owned chunk completes in memory once the local pass plus `N-1`
//!   incoming passes have been counted by the Tracker. No DMAs are
//!   needed; messages crossing a shared switch port or a slow
//!   inter-node link contend in the fabric's per-link serialisers.

use std::collections::VecDeque;

use crate::addrmap::{ChunkRoute, OutputConfig};
use crate::engine::{FusedOptions, FusedRunResult};
use crate::tracker::{Tracker, TrackerConfig, WfId};
use t3_gpu::engine::{GemmEngine, GemmEvent};
use t3_gpu::gemm::GemmGrid;
use t3_mem::controller::{MemoryController, StreamId};
use t3_mem::llc::Llc;
use t3_net::ring::Ring;
use t3_sim::config::SystemConfig;
use t3_sim::stats::{TrafficClass, TrafficStats};
use t3_sim::{Bytes, Cycle};
use t3_topo::{Fabric, Schedule, Topology};
use t3_trace::{reborrow, Event, Instruments};

/// Result of an explicit multi-GPU fused run.
#[derive(Debug, Clone)]
pub struct MultiGpuResult {
    /// Cycle at which the slowest GPU finished.
    pub cycles: Cycle,
    /// Per-GPU completion times.
    pub per_gpu_cycles: Vec<Cycle>,
    /// Per-GPU DRAM traffic.
    pub per_gpu_stats: Vec<TrafficStats>,
    /// Max minus min completion time (homogeneity check).
    pub skew: Cycle,
    /// Total DMA chunk transfers across GPUs.
    pub dma_transfers: u64,
    /// Observed wire bytes per fabric link, indexed by
    /// [`t3_topo::LinkId`]. Multi-hop messages count once per hop,
    /// so this must equal the schedule's per-link prediction.
    pub link_bytes: Vec<Bytes>,
}

impl MultiGpuResult {
    /// The mean per-GPU completion time.
    pub fn mean_cycles(&self) -> f64 {
        self.per_gpu_cycles.iter().sum::<Cycle>() as f64 / self.per_gpu_cycles.len() as f64
    }

    /// Relative difference between this run and a mirrored
    /// single-GPU result.
    pub fn mirror_error(&self, mirrored: &FusedRunResult) -> f64 {
        let a = self.cycles as f64;
        let b = mirrored.cycles as f64;
        (a - b).abs() / b
    }
}

/// One wavefront region awaiting incoming-update attribution.
#[derive(Debug, Clone, Copy)]
struct FeedEntry {
    position: usize,
    wf: WfId,
    addr: u64,
    region_bytes: Bytes,
    consumed_bytes: Bytes,
}

/// Per-position bookkeeping.
#[derive(Debug)]
struct ChunkState {
    /// Local WG bounds of this position in the device's execution
    /// order.
    wg_bounds: (u64, u64),
    /// Global chunk id this position computes.
    global_chunk: usize,
    bytes: Bytes,
    route: ChunkRoute,
    /// Physical destination GPU for outgoing positions (`None` for
    /// the owned chunk).
    dest: Option<usize>,
    /// Full passes of incoming updates this position expects (1 on a
    /// ring; `N-1` for a direct fabric's owned chunk; 0 otherwise).
    incoming_passes: usize,
    triggered_wfs: usize,
    expected_wfs: usize,
    dma_fired: bool,
    feed_built: bool,
}

/// One simulated GPU.
struct Gpu {
    mc: MemoryController,
    llc: Llc,
    gemm: GemmEngine,
    tracker: Tracker,
    chunks: Vec<ChunkState>,
    feed: VecDeque<FeedEntry>,
    rs_update_seen: Bytes,
    /// Pending DMA source reads: (position, serviced-read target).
    dma_reading: Option<(usize, Bytes)>,
    dma_queue: VecDeque<usize>,
    first_stage_done: bool,
    gemm_done: bool,
    finished_at: Option<Cycle>,
    dma_transfers: u64,
}

/// Message payload on the fabric: which global chunk and how many
/// bytes.
#[derive(Debug, Clone, Copy)]
struct Incoming {
    global_chunk: usize,
    bytes: Bytes,
}

/// Runs the fused GEMM-RS with every GPU simulated explicitly, on the
/// ring fabric the paper evaluates.
///
/// # Panics
///
/// Panics if the substrate cannot reduce in memory, or on
/// non-convergence (internal error).
pub fn run_multi_gpu_fused_rs(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
) -> MultiGpuResult {
    run_multi_gpu_fused_rs_instrumented(sys, grid, opts, None)
}

/// [`run_multi_gpu_fused_rs`] with optional structured instrumentation
/// of **device 0** (all devices are homogeneous, so one observed GPU
/// is representative — the same argument as the mirrored methodology).
/// Passing `None` is bit-identical to `run_multi_gpu_fused_rs`.
///
/// # Panics
///
/// As [`run_multi_gpu_fused_rs`].
pub fn run_multi_gpu_fused_rs_instrumented(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
    ins: Option<&mut Instruments>,
) -> MultiGpuResult {
    let topo = Topology::ring(sys.num_gpus, &sys.link);
    run_multi_gpu_fused_rs_on(sys, grid, opts, &topo, ins)
}

/// Runs the fused GEMM + reduce-scatter with every GPU simulated
/// explicitly over an arbitrary fabric. A ring topology reproduces
/// [`run_multi_gpu_fused_rs`] exactly; any other fabric runs the
/// direct schedule with multi-hop, per-link-contended traffic (see
/// the module docs).
///
/// # Panics
///
/// Panics if the topology's GPU count differs from `sys.num_gpus`, if
/// the substrate cannot reduce in memory, or on non-convergence
/// (internal error).
pub fn run_multi_gpu_fused_rs_on(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
    topo: &Topology,
    mut ins: Option<&mut Instruments>,
) -> MultiGpuResult {
    assert!(
        opts.substrate.reduces_in_memory(),
        "fused T3 requires an in-memory reduction substrate"
    );
    assert!(opts.stagger, "the explicit model always staggers");
    assert_eq!(
        topo.num_gpus(),
        sys.num_gpus,
        "topology and system disagree on GPU count"
    );
    let n = sys.num_gpus;
    let is_ring = topo.is_ring();
    let ring = Ring::new(n);
    let sched = Schedule::reduce_scatter(topo);
    // All routing decisions flow from the one schedule source.
    let configs: Vec<OutputConfig> = (0..n)
        .map(|d| OutputConfig::from_reduce_scatter_schedule(&sched, d))
        .collect();
    let mut fabric = Fabric::new(topo);
    let elem_bytes = grid.shape().elem_bytes;
    let update_cost = opts.substrate.update_cost_multiplier(&sys.mem);

    // Global chunk geometry.
    let global_bounds: Vec<(u64, u64)> = (0..n)
        .map(|c| grid.chunk_wg_bounds(n as u64, c as u64))
        .collect();

    let mut gpus: Vec<Gpu> = (0..n)
        .map(|d| {
            // Local execution order: positions 0..n. On a ring,
            // position p is global chunk (d + p) % n and everything
            // leaves toward prev(d) (the ascending mirror-image
            // schedule); elsewhere the schedule-derived configuration
            // names both the chunk and its owner.
            let mut chunks = Vec::with_capacity(n);
            let mut cursor = 0u64;
            for p in 0..n {
                let (global_chunk, route, dest) = if is_ring {
                    let route = configs[0].route(p);
                    let dest = (p < n - 1).then(|| ring.prev(d));
                    ((d + p) % n, route, dest)
                } else {
                    let route = configs[d].route(p);
                    (configs[d].chunk_id(p), route, route.destination())
                };
                let incoming_passes = if is_ring {
                    usize::from(p >= 1)
                } else {
                    sched
                        .sends()
                        .filter(|s| s.dst == d && s.chunk == global_chunk)
                        .count()
                };
                let (g0, g1) = global_bounds[global_chunk];
                let size = g1 - g0;
                chunks.push(ChunkState {
                    wg_bounds: (cursor, cursor + size),
                    global_chunk,
                    bytes: grid.wg_range_output_bytes(g0, g1),
                    route,
                    dest,
                    incoming_passes,
                    triggered_wfs: 0,
                    expected_wfs: if route.tracked() {
                        count_nonempty_wfs(&grid, g0, g1)
                    } else {
                        0
                    },
                    dma_fired: false,
                    feed_built: false,
                });
                cursor += size;
            }
            Gpu {
                mc: MemoryController::new(&sys.mem, build_policy(opts, sys)),
                llc: Llc::new(&sys.mem),
                gemm: GemmEngine::new(&sys.gpu, grid.clone()),
                tracker: Tracker::new(TrackerConfig::paper(grid.wf_tile_elems())),
                chunks,
                feed: VecDeque::new(),
                rs_update_seen: 0,
                dma_reading: None,
                dma_queue: VecDeque::new(),
                first_stage_done: false,
                gemm_done: false,
                finished_at: None,
                dma_transfers: 0,
            }
        })
        .collect();

    let mut now: Cycle = 0;
    loop {
        // Phase A: drain fabric deliveries per destination GPU.
        let mut arrivals: Vec<Vec<Incoming>> = vec![Vec::new(); n];
        for (d, list) in arrivals.iter_mut().enumerate() {
            for delivery in fabric.deliveries_until(d, now) {
                list.push(Incoming {
                    global_chunk: delivery.tag as usize,
                    bytes: delivery.bytes,
                });
            }
        }
        for (d, incoming_list) in arrivals.into_iter().enumerate() {
            let gpu = &mut gpus[d];
            for incoming in incoming_list {
                if d == 0 {
                    if let Some(ins) = reborrow(&mut ins) {
                        ins.record(
                            now,
                            Event::ChunkRecv {
                                chunk: incoming.global_chunk as u64,
                                bytes: incoming.bytes,
                            },
                        );
                        ins.add("chunks.received", 1);
                    }
                }
                let pos = gpu
                    .chunks
                    .iter()
                    .position(|c| c.global_chunk == incoming.global_chunk)
                    .expect("chunk routed to wrong GPU");
                if !gpu.chunks[pos].feed_built {
                    for _ in 0..gpu.chunks[pos].incoming_passes {
                        build_feed(
                            &grid,
                            global_bounds[incoming.global_chunk],
                            pos,
                            &mut gpu.feed,
                            elem_bytes,
                        );
                    }
                    gpu.chunks[pos].feed_built = true;
                }
                gpu.mc.enqueue(
                    StreamId::Comm,
                    TrafficClass::RsUpdate,
                    incoming.bytes,
                    update_cost,
                );
            }
        }

        for (d, gpu) in gpus.iter_mut().enumerate() {
            if d == 0 {
                gpu.mc.step_traced(now, None, reborrow(&mut ins));
            } else {
                gpu.mc.step(now, None);
            }

            // Attribute serviced incoming updates.
            let serviced = gpu.mc.stats().bytes(TrafficClass::RsUpdate);
            if serviced > gpu.rs_update_seen {
                let mut delta = serviced - gpu.rs_update_seen;
                gpu.rs_update_seen = serviced;
                while delta > 0 {
                    let entry = gpu.feed.front_mut().expect("serviced more than announced");
                    let take = delta.min(entry.region_bytes - entry.consumed_bytes);
                    entry.consumed_bytes += take;
                    delta -= take;
                    if entry.consumed_bytes == entry.region_bytes {
                        let e = *entry;
                        gpu.feed.pop_front();
                        let region_elems = e.region_bytes / elem_bytes;
                        let updates = gpu.chunks[e.position].route.updates_per_element();
                        if gpu
                            .tracker
                            .record_update(e.wf, e.addr, region_elems, region_elems, updates)
                            .is_some()
                        {
                            gpu.chunks[e.position].triggered_wfs += 1;
                        }
                    }
                }
            }

            // GEMM progress.
            match gpu.gemm.step(now, &mut gpu.mc, &mut gpu.llc) {
                GemmEvent::Idle => {}
                GemmEvent::Finished => gpu.gemm_done = true,
                GemmEvent::StageStoresIssued {
                    stage,
                    wg_start,
                    wg_end,
                    bytes,
                    started,
                    compute_cycles,
                } => {
                    if d == 0 {
                        if let Some(ins) = reborrow(&mut ins) {
                            ins.record(
                                now,
                                Event::GemmStage {
                                    stage,
                                    wg_start,
                                    wg_end,
                                    start: started,
                                    end: now,
                                    bytes,
                                    compute_cycles,
                                },
                            );
                            ins.add("gemm.stages", 1);
                        }
                    }
                    if !gpu.first_stage_done {
                        let frac = gpu.mc.avg_occupancy_fraction();
                        gpu.mc.observe_compute_intensity(frac);
                        gpu.first_stage_done = true;
                    }
                    let mut wg = wg_start;
                    while wg < wg_end {
                        let pos = gpu
                            .chunks
                            .iter()
                            .position(|c| wg >= c.wg_bounds.0 && wg < c.wg_bounds.1)
                            .expect("wg outside chunk space");
                        let upper = gpu.chunks[pos].wg_bounds.1.min(wg_end);
                        // Bytes via the *global* chunk's tiles: local WG
                        // index offsets map 1:1 onto the rotated global
                        // range.
                        let (g0, _) = global_bounds[gpu.chunks[pos].global_chunk];
                        let local0 = gpu.chunks[pos].wg_bounds.0;
                        let bytes =
                            grid.wg_range_output_bytes(g0 + (wg - local0), g0 + (upper - local0));
                        match gpu.chunks[pos].route {
                            ChunkRoute::RemoteUpdate { .. } => {
                                let dest = gpu.chunks[pos]
                                    .dest
                                    .expect("remote chunk has a destination");
                                let link_ins = if d == 0 { reborrow(&mut ins) } else { None };
                                fabric.send_traced(
                                    now,
                                    d,
                                    dest,
                                    gpu.chunks[pos].global_chunk as u64,
                                    bytes,
                                    link_ins,
                                );
                            }
                            ChunkRoute::LocalOnly { .. }
                            | ChunkRoute::LocalThenDmaUpdate { .. } => {
                                gpu.mc.enqueue(
                                    StreamId::Compute,
                                    TrafficClass::GemmWrite,
                                    bytes,
                                    update_cost,
                                );
                                record_local(
                                    &grid,
                                    gpu,
                                    pos,
                                    g0 + (wg - local0),
                                    g0 + (upper - local0),
                                    elem_bytes,
                                );
                            }
                            _ => unreachable!("fused RS uses no other routes"),
                        }
                        wg = upper;
                    }
                }
            }

            // DMA engine: one source read in flight, then the fabric.
            if let Some((pos, target)) = gpu.dma_reading {
                if gpu.mc.stats().bytes(TrafficClass::RsRead) >= target {
                    let chunk = gpu.chunks[pos].global_chunk as u64;
                    let payload = gpu.chunks[pos].bytes;
                    let dest = gpu.chunks[pos].dest.expect("DMA chunk has a destination");
                    let out_port = topo.route(d, dest)[0];
                    let start = fabric.link(out_port).busy_until().max(now);
                    let link_ins = if d == 0 { reborrow(&mut ins) } else { None };
                    fabric.send_traced(now, d, dest, chunk, payload, link_ins);
                    if d == 0 {
                        if let Some(ins) = reborrow(&mut ins) {
                            let end = fabric.link(out_port).busy_until();
                            ins.record(
                                end,
                                Event::ChunkSend {
                                    chunk,
                                    bytes: payload,
                                    hops: topo.route(d, dest).len() as u64,
                                    start,
                                    end,
                                },
                            );
                            ins.add("dma.chunks_sent", 1);
                        }
                    }
                    gpu.dma_transfers += 1;
                    gpu.dma_reading = None;
                }
            }
            if gpu.dma_reading.is_none() {
                if let Some(pos) = gpu.dma_queue.pop_front() {
                    let target = gpu.mc.stats().bytes(TrafficClass::RsRead) + gpu.chunks[pos].bytes;
                    gpu.mc.enqueue(
                        StreamId::Comm,
                        TrafficClass::RsRead,
                        gpu.chunks[pos].bytes,
                        1.0,
                    );
                    gpu.dma_reading = Some((pos, target));
                }
            }
            // Fire DMAs for completed steady-state chunks.
            for pos in 0..gpu.chunks.len() {
                let c = &mut gpu.chunks[pos];
                if c.route.uses_dma() && !c.dma_fired && c.triggered_wfs == c.expected_wfs {
                    c.dma_fired = true;
                    if d == 0 {
                        if let Some(ins) = reborrow(&mut ins) {
                            ins.record(
                                now,
                                Event::DmaTriggerFire {
                                    chunk: c.global_chunk as u64,
                                    bytes: c.bytes,
                                },
                            );
                            ins.add("dma.triggers_fired", 1);
                        }
                    }
                    gpu.dma_queue.push_back(pos);
                }
            }

            // Completion bookkeeping (fabric payloads may still be in
            // flight toward a peer; that time belongs to the receiver,
            // which cannot finish before consuming them).
            let chunks_done = gpu
                .chunks
                .iter()
                .all(|c| !c.route.tracked() || c.triggered_wfs == c.expected_wfs);
            if gpu.finished_at.is_none()
                && gpu.gemm_done
                && chunks_done
                && gpu.feed.is_empty()
                && gpu.dma_reading.is_none()
                && gpu.dma_queue.is_empty()
                && gpu.mc.is_idle()
            {
                gpu.finished_at = Some(now);
            }
        }

        let all_done = gpus.iter().all(|g| g.finished_at.is_some()) && fabric.busy_until() <= now;
        if all_done {
            break;
        }
        now += 1;
        assert!(now < 4_000_000_000, "multi-GPU run failed to converge");
    }

    let per_gpu_cycles: Vec<Cycle> = gpus
        .iter()
        .map(|g| g.finished_at.expect("all finished"))
        .collect();
    let max = *per_gpu_cycles.iter().max().expect("non-empty");
    let min = *per_gpu_cycles.iter().min().expect("non-empty");
    if let Some(ins) = reborrow(&mut ins) {
        let gpu0 = &gpus[0];
        ins.record(
            max,
            Event::LlcSample {
                hits: gpu0.llc.hits(),
                misses: gpu0.llc.misses(),
            },
        );
        if let Some(m) = ins.metrics.as_mut() {
            m.set("run.cycles", max);
            m.set("run.skew", max - min);
            m.set("dma.transfers", gpus.iter().map(|g| g.dma_transfers).sum());
            m.set("tracker.peak_entries", gpu0.tracker.peak_entries() as u64);
            m.set("llc.hits", gpu0.llc.hits());
            m.set("llc.misses", gpu0.llc.misses());
            m.record_traffic(gpu0.mc.stats());
        }
    }
    MultiGpuResult {
        cycles: max,
        skew: max - min,
        per_gpu_stats: gpus.iter().map(|g| g.mc.stats().clone()).collect(),
        dma_transfers: gpus.iter().map(|g| g.dma_transfers).sum(),
        link_bytes: fabric.link_bytes(),
        per_gpu_cycles,
    }
}

fn build_policy(
    opts: &FusedOptions,
    sys: &SystemConfig,
) -> Box<dyn t3_mem::arbiter::ArbitrationPolicy> {
    use crate::engine::PolicyChoice;
    use t3_mem::arbiter::{ComputeFirstPolicy, McaPolicy, RoundRobinPolicy};
    match opts.policy {
        PolicyChoice::RoundRobin => Box::new(RoundRobinPolicy::new()),
        PolicyChoice::ComputeFirst => Box::new(ComputeFirstPolicy::new()),
        PolicyChoice::McaDynamic => Box::new(McaPolicy::new(&sys.mem)),
        PolicyChoice::McaFixed(t) => Box::new(McaPolicy::with_fixed_threshold(t)),
    }
}

fn count_nonempty_wfs(grid: &GemmGrid, w0: u64, w1: u64) -> usize {
    let wfs = grid.wfs_per_wg();
    (w0..w1)
        .map(|wg| {
            let h = grid.wg_tile(wg).height as usize;
            (0..wfs)
                .filter(|&wf| {
                    let (r0, r1) = crate::fused::wf_rows(h, wfs, wf);
                    r1 > r0
                })
                .count()
        })
        .sum()
}

fn build_feed(
    grid: &GemmGrid,
    global_bounds: (u64, u64),
    position: usize,
    feed: &mut VecDeque<FeedEntry>,
    elem_bytes: u64,
) {
    let wfs = grid.wfs_per_wg();
    for wg in global_bounds.0..global_bounds.1 {
        let t = grid.wg_tile(wg);
        let (region_addr, _) = grid.wg_output_region(wg);
        for wf in 0..wfs {
            let (r0, r1) = crate::fused::wf_rows(t.height as usize, wfs, wf);
            let region_bytes = ((r1 - r0) as u64) * t.width * elem_bytes;
            if region_bytes == 0 {
                continue;
            }
            feed.push_back(FeedEntry {
                position,
                wf: WfId { wg, wf },
                addr: region_addr + (r0 as u64) * t.width * elem_bytes,
                region_bytes,
                consumed_bytes: 0,
            });
        }
    }
}

fn record_local(grid: &GemmGrid, gpu: &mut Gpu, pos: usize, w0: u64, w1: u64, elem_bytes: u64) {
    let wfs = grid.wfs_per_wg();
    let updates = gpu.chunks[pos].route.updates_per_element();
    for wg in w0..w1 {
        let t = grid.wg_tile(wg);
        let (region_addr, _) = grid.wg_output_region(wg);
        for wf in 0..wfs {
            let (r0, r1) = crate::fused::wf_rows(t.height as usize, wfs, wf);
            let elems = ((r1 - r0) as u64) * t.width;
            if elems == 0 {
                continue;
            }
            let addr = region_addr + (r0 as u64) * t.width * elem_bytes;
            if gpu
                .tracker
                .record_update(WfId { wg, wf }, addr, elems, elems, updates)
                .is_some()
            {
                gpu.chunks[pos].triggered_wfs += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fused_gemm_rs;
    use t3_gpu::gemm::GemmShape;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    fn grid_of(sys: &SystemConfig) -> GemmGrid {
        GemmGrid::new(&sys.gpu, GemmShape::new(4096, 4096, 512))
    }

    fn small_grid(sys: &SystemConfig) -> GemmGrid {
        GemmGrid::new(&sys.gpu, GemmShape::new(2048, 2048, 512))
    }

    #[test]
    fn all_gpus_complete_with_zero_skew() {
        // Fully homogeneous inputs: every GPU must finish at the same
        // cycle (this is the paper's homogeneity argument made exact).
        let s = sys();
        let r = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        assert_eq!(r.skew, 0, "homogeneous GPUs must not skew");
        assert_eq!(r.per_gpu_cycles.len(), s.num_gpus);
        assert_eq!(r.dma_transfers, (s.num_gpus * (s.num_gpus - 2)) as u64);
    }

    #[test]
    fn ring_topology_reproduces_seed_timing() {
        // Pinned regression: the fabric-based ring path must produce
        // the exact cycle counts the dedicated per-GPU-link
        // implementation produced before the topology refactor.
        let s = sys();
        let r = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        assert_eq!(r.cycles, 438_774);
        assert_eq!(r.skew, 0);
        assert_eq!(r.dma_transfers, 48);
        let mut s4 = sys();
        s4.num_gpus = 4;
        let g4 = GemmGrid::new(&s4.gpu, GemmShape::new(2048, 2048, 512));
        let r4 = run_multi_gpu_fused_rs(&s4, g4, &FusedOptions::default());
        assert_eq!(r4.cycles, 120_365);
        assert_eq!(r4.dma_transfers, 8);
    }

    #[test]
    fn explicit_topology_ring_matches_wrapper_exactly() {
        let s = sys();
        let topo = Topology::ring(s.num_gpus, &s.link);
        let via_topo =
            run_multi_gpu_fused_rs_on(&s, small_grid(&s), &FusedOptions::default(), &topo, None);
        let wrapper = run_multi_gpu_fused_rs(&s, small_grid(&s), &FusedOptions::default());
        assert_eq!(via_topo.cycles, wrapper.cycles);
        assert_eq!(via_topo.per_gpu_cycles, wrapper.per_gpu_cycles);
        assert_eq!(via_topo.link_bytes, wrapper.link_bytes);
    }

    #[test]
    fn mirrored_methodology_validation() {
        // The explicit N-GPU run and the mirrored single-GPU run must
        // agree closely (paper Section 5.1.1's justification).
        let s = sys();
        let explicit = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        let mirrored = run_fused_gemm_rs(&s, grid_of(&s), &FusedOptions::default());
        let err = explicit.mirror_error(&mirrored);
        assert!(
            err < 0.05,
            "mirrored methodology off by {:.1}% ({} vs {})",
            err * 100.0,
            explicit.cycles,
            mirrored.cycles
        );
    }

    #[test]
    fn per_gpu_traffic_is_homogeneous() {
        let s = sys();
        let r = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        let first = r.per_gpu_stats[0].total();
        for (d, stats) in r.per_gpu_stats.iter().enumerate() {
            let diff = (stats.total() as i64 - first as i64).unsigned_abs();
            assert!(
                diff < 1 << 20,
                "GPU {d} traffic {} deviates from GPU 0 {}",
                stats.total(),
                first
            );
        }
    }

    #[test]
    fn two_gpu_explicit_ring() {
        let mut s = sys();
        s.num_gpus = 2;
        let r = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        assert_eq!(r.dma_transfers, 0);
        assert_eq!(r.skew, 0);
    }

    /// Per-link wire bytes predicted from the schedule and the grid's
    /// actual chunk geometry: every send contributes its full chunk to
    /// each hop of its route.
    fn predicted_bytes(topo: &Topology, grid: &GemmGrid) -> Vec<Bytes> {
        let n = topo.num_gpus() as u64;
        let sched = Schedule::reduce_scatter(topo);
        let mut per_link = vec![0u64; topo.num_links()];
        for send in sched.sends() {
            let (g0, g1) = grid.chunk_wg_bounds(n, send.chunk as u64);
            let bytes = grid.wg_range_output_bytes(g0, g1);
            for id in &send.route {
                per_link[id.0] += bytes;
            }
        }
        per_link
    }

    #[test]
    fn non_ring_fabrics_complete_with_exact_byte_accounting() {
        let s = sys();
        let grid = small_grid(&s);
        for topo in [
            Topology::switch(s.num_gpus, &s.link),
            Topology::torus2d(2, 4, &s.link),
            Topology::hierarchical(2, 4, &s.link, &s.link),
        ] {
            let r =
                run_multi_gpu_fused_rs_on(&s, grid.clone(), &FusedOptions::default(), &topo, None);
            let label = topo.kind().label();
            assert!(r.cycles > 0, "{label}: no progress");
            assert!(
                r.per_gpu_cycles.iter().all(|&c| c > 0 && c <= r.cycles),
                "{label}: inconsistent per-GPU times"
            );
            // Direct schedule: all traffic is fine-grained remote
            // updates, no DMAs.
            assert_eq!(r.dma_transfers, 0, "{label}: direct RS uses no DMA");
            assert_eq!(
                r.link_bytes,
                predicted_bytes(&topo, &grid),
                "{label}: observed wire bytes diverge from the schedule"
            );
        }
    }

    #[test]
    fn slow_inter_node_links_slow_the_hierarchical_run() {
        let s = sys();
        let grid = small_grid(&s);
        let mut slow = s.link.clone();
        slow.link_gb_s /= 8.0;
        slow.latency_ns *= 4.0;
        let uniform = Topology::hierarchical(2, 4, &s.link, &s.link);
        let bottleneck = Topology::hierarchical(2, 4, &s.link, &slow);
        let fast =
            run_multi_gpu_fused_rs_on(&s, grid.clone(), &FusedOptions::default(), &uniform, None);
        let slowed =
            run_multi_gpu_fused_rs_on(&s, grid, &FusedOptions::default(), &bottleneck, None);
        assert!(
            slowed.cycles > fast.cycles,
            "slow inter-node links must cost cycles ({} <= {})",
            slowed.cycles,
            fast.cycles
        );
    }

    #[test]
    fn switch_fabric_run_is_traced() {
        let s = sys();
        let mut ins = Instruments::full();
        let topo = Topology::switch(s.num_gpus, &s.link);
        let r = run_multi_gpu_fused_rs_on(
            &s,
            small_grid(&s),
            &FusedOptions::default(),
            &topo,
            Some(&mut ins),
        );
        let m = ins.metrics.as_ref().expect("metrics on");
        assert_eq!(m.counter("run.cycles"), r.cycles);
        // Device 0's outgoing remote updates all cross its switch
        // port, which the tracer observed.
        assert!(m.counter("link.bytes_sent") > 0);
        assert!(m.counter("chunks.received") > 0);
        let tracer = ins.tracer.as_ref().expect("tracer on");
        assert!(tracer.count(|e| matches!(e, Event::LinkBusy { .. })) > 0);
    }
}
