//! Explicit multi-GPU simulation of the fused GEMM + reduce-scatter —
//! every GPU simulated, real cross-GPU traffic on a real fabric.
//!
//! The paper (and [`crate::engine`]) exploit the homogeneity of
//! tensor-parallel execution to simulate one GPU and mirror its
//! outgoing traffic as the incoming stream (Section 5.1.1). This
//! module drops that assumption: all `N` GPUs run their own GEMM
//! engine, memory controller, LLC, Tracker and DMA engine, and every
//! chunk travels over a [`t3_topo::Fabric`] from its producer to its
//! consumer — contending per hop with everything else on the wire.
//!
//! Two schedules, one source ([`t3_topo::Schedule`]):
//!
//! * **Ring fabrics** run the ascending mirror-image ring exactly as
//!   before (its purpose is to *validate the mirrored methodology*):
//!   device `d` computes global chunk `(d + p) mod N` at local
//!   position `p` and sends to `prev(d)`. Position 0 leaves as
//!   fine-grained remote stores; positions `1..=N-2` as
//!   Tracker-triggered DMA updates; the last position is the owned
//!   chunk. The per-position routes come from the schedule-derived
//!   [`OutputConfig`], which reproduces the hand-built ring
//!   configuration bit-for-bit.
//! * **Every other fabric** (switch, torus, hierarchical,
//!   fully-connected) runs the direct schedule (Section 7.1): each
//!   non-owned chunk streams straight to its owner as fine-grained
//!   remote updates over its (possibly multi-hop) route, and the
//!   owned chunk completes in memory once the local pass plus `N-1`
//!   incoming passes have been counted by the Tracker. No DMAs are
//!   needed; messages crossing a shared switch port or a slow
//!   inter-node link contend in the fabric's per-link serialisers.
//!
//! # Engines
//!
//! Three byte-identical ways to advance time:
//!
//! * **Stepped** ([`t3_sim::SimMode::Stepped`]): the reference loop —
//!   every device steps every cycle.
//! * **Fast-forward** ([`t3_sim::SimMode::FastForward`], the default):
//!   when every memory controller is idle, the loop leaps `now`
//!   straight to the minimum of each component's
//!   `next_event` — GEMM stage boundaries, fabric inbox arrivals —
//!   replaying the skipped idle cycles' side effects (tracer samples,
//!   arbiter wait counters, credit regeneration) exactly.
//! * **Sharded** ([`run_multi_gpu_fused_rs_sharded`]): devices are
//!   partitioned across worker threads and simulate windows of
//!   `1 + min link latency` cycles independently (no message sent
//!   inside a window can arrive within it), buffering outgoing sends;
//!   each window barrier replays the buffered sends into the shared
//!   fabric in the exact order the sequential loop would have used.

use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::thread;

use crate::addrmap::{ChunkRoute, OutputConfig};
use crate::engine::{min_event, FusedOptions, FusedRunResult};
use crate::tracker::{Tracker, TrackerConfig, WfId};
use t3_gpu::engine::{GemmEngine, GemmEvent};
use t3_gpu::gemm::GemmGrid;
use t3_mem::controller::{MemoryController, StreamId};
use t3_mem::llc::Llc;
use t3_net::ring::Ring;
use t3_sim::config::SystemConfig;
use t3_sim::stats::{TrafficClass, TrafficStats};
use t3_sim::{Bytes, Cycle, SimMode};
use t3_topo::{Arrival, Fabric, Schedule, Topology};
use t3_trace::{reborrow, Event, Instruments};

/// Result of an explicit multi-GPU fused run.
#[derive(Debug, Clone)]
pub struct MultiGpuResult {
    /// Cycle at which the slowest GPU finished.
    pub cycles: Cycle,
    /// Per-GPU completion times.
    pub per_gpu_cycles: Vec<Cycle>,
    /// Per-GPU DRAM traffic.
    pub per_gpu_stats: Vec<TrafficStats>,
    /// Max minus min completion time (homogeneity check).
    pub skew: Cycle,
    /// Total DMA chunk transfers across GPUs.
    pub dma_transfers: u64,
    /// Observed wire bytes per fabric link, indexed by
    /// [`t3_topo::LinkId`]. Multi-hop messages count once per hop,
    /// so this must equal the schedule's per-link prediction.
    pub link_bytes: Vec<Bytes>,
}

impl MultiGpuResult {
    /// The mean per-GPU completion time.
    pub fn mean_cycles(&self) -> f64 {
        self.per_gpu_cycles.iter().sum::<Cycle>() as f64 / self.per_gpu_cycles.len() as f64
    }

    /// Relative difference between this run and a mirrored
    /// single-GPU result.
    pub fn mirror_error(&self, mirrored: &FusedRunResult) -> f64 {
        let a = self.cycles as f64;
        let b = mirrored.cycles as f64;
        (a - b).abs() / b
    }
}

/// One wavefront region awaiting incoming-update attribution.
#[derive(Debug, Clone, Copy)]
struct FeedEntry {
    position: usize,
    wf: WfId,
    addr: u64,
    region_bytes: Bytes,
    consumed_bytes: Bytes,
}

/// Per-position bookkeeping.
#[derive(Debug)]
struct ChunkState {
    /// Local WG bounds of this position in the device's execution
    /// order.
    wg_bounds: (u64, u64),
    /// Global chunk id this position computes.
    global_chunk: usize,
    bytes: Bytes,
    route: ChunkRoute,
    /// Physical destination GPU for outgoing positions (`None` for
    /// the owned chunk).
    dest: Option<usize>,
    /// Full passes of incoming updates this position expects (1 on a
    /// ring; `N-1` for a direct fabric's owned chunk; 0 otherwise).
    incoming_passes: usize,
    triggered_wfs: usize,
    expected_wfs: usize,
    dma_fired: bool,
    feed_built: bool,
}

/// One simulated GPU.
struct Gpu {
    mc: MemoryController,
    llc: Llc,
    gemm: GemmEngine,
    tracker: Tracker,
    chunks: Vec<ChunkState>,
    feed: VecDeque<FeedEntry>,
    rs_update_seen: Bytes,
    /// Pending DMA source reads: (position, serviced-read target).
    dma_reading: Option<(usize, Bytes)>,
    dma_queue: VecDeque<usize>,
    first_stage_done: bool,
    gemm_done: bool,
    finished_at: Option<Cycle>,
    dma_transfers: u64,
}

/// Message payload on the fabric: which global chunk and how many
/// bytes.
#[derive(Debug, Clone, Copy)]
struct Incoming {
    global_chunk: usize,
    bytes: Bytes,
}

impl From<Arrival> for Incoming {
    fn from(a: Arrival) -> Self {
        Incoming {
            global_chunk: a.tag as usize,
            bytes: a.bytes,
        }
    }
}

/// A fabric send a sharded worker buffered during its window, replayed
/// at the barrier in `(cycle, device, program order)`.
#[derive(Debug, Clone, Copy)]
struct SendIntent {
    cycle: Cycle,
    src: usize,
    dst: usize,
    tag: u64,
    bytes: Bytes,
}

/// Where a device's outgoing fabric traffic goes: straight onto the
/// shared fabric (sequential engines) or into a per-worker buffer for
/// deterministic replay at the window barrier (sharded engine — which
/// never instruments, so the buffered variant ignores `ins`).
enum SendSink<'a> {
    Fabric(&'a mut Fabric),
    Buffer(&'a mut Vec<SendIntent>),
}

impl SendSink<'_> {
    /// A fine-grained remote-update stream send.
    fn send_update(
        &mut self,
        now: Cycle,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: Bytes,
        ins: Option<&mut Instruments>,
    ) {
        match self {
            SendSink::Fabric(fabric) => {
                fabric.send_traced(now, src, dst, tag, bytes, ins);
            }
            SendSink::Buffer(intents) => {
                debug_assert!(ins.is_none(), "sharded windows are uninstrumented");
                intents.push(SendIntent {
                    cycle: now,
                    src,
                    dst,
                    tag,
                    bytes,
                });
            }
        }
    }

    /// A Tracker-fired DMA chunk send; records the chunk's wire span
    /// as a [`Event::ChunkSend`] when instrumented.
    fn send_dma(
        &mut self,
        now: Cycle,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: Bytes,
        mut ins: Option<&mut Instruments>,
    ) {
        match self {
            SendSink::Fabric(fabric) => {
                let out_port = fabric.topo().route(src, dst)[0];
                let hops = fabric.topo().route(src, dst).len() as u64;
                let start = fabric.link(out_port).busy_until().max(now);
                fabric.send_traced(now, src, dst, tag, bytes, reborrow(&mut ins));
                if let Some(ins) = ins {
                    let end = fabric.link(out_port).busy_until();
                    ins.record(
                        end,
                        Event::ChunkSend {
                            chunk: tag,
                            bytes,
                            hops,
                            start,
                            end,
                        },
                    );
                    ins.add("dma.chunks_sent", 1);
                }
            }
            SendSink::Buffer(intents) => {
                debug_assert!(ins.is_none(), "sharded windows are uninstrumented");
                intents.push(SendIntent {
                    cycle: now,
                    src,
                    dst,
                    tag,
                    bytes,
                });
            }
        }
    }
}

/// Read-only per-run geometry shared by every device step.
struct StepCtx<'a> {
    grid: &'a GemmGrid,
    global_bounds: &'a [(u64, u64)],
    elem_bytes: u64,
    update_cost: f64,
    mode: SimMode,
}

/// Runs the fused GEMM-RS with every GPU simulated explicitly, on the
/// ring fabric the paper evaluates.
///
/// # Panics
///
/// Panics if the substrate cannot reduce in memory, or on
/// non-convergence (internal error).
pub fn run_multi_gpu_fused_rs(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
) -> MultiGpuResult {
    run_multi_gpu_fused_rs_instrumented(sys, grid, opts, None)
}

/// [`run_multi_gpu_fused_rs`] with optional structured instrumentation
/// of **device 0** (all devices are homogeneous, so one observed GPU
/// is representative — the same argument as the mirrored methodology).
/// Passing `None` is bit-identical to `run_multi_gpu_fused_rs`.
///
/// # Panics
///
/// As [`run_multi_gpu_fused_rs`].
pub fn run_multi_gpu_fused_rs_instrumented(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
    ins: Option<&mut Instruments>,
) -> MultiGpuResult {
    let topo = Topology::ring(sys.num_gpus, &sys.link);
    run_multi_gpu_fused_rs_on(sys, grid, opts, &topo, ins)
}

/// Builds the per-device simulation state and the shared fabric.
///
/// # Panics
///
/// Panics on the option/topology preconditions shared by every engine
/// entry point (see [`run_multi_gpu_fused_rs_on`]).
fn build_run(
    sys: &SystemConfig,
    grid: &GemmGrid,
    opts: &FusedOptions,
    topo: &Topology,
) -> (Vec<Gpu>, Fabric, Vec<(u64, u64)>) {
    assert!(
        opts.substrate.reduces_in_memory(),
        "fused T3 requires an in-memory reduction substrate"
    );
    assert!(opts.stagger, "the explicit model always staggers");
    assert_eq!(
        topo.num_gpus(),
        sys.num_gpus,
        "topology and system disagree on GPU count"
    );
    let n = sys.num_gpus;
    let is_ring = topo.is_ring();
    let ring = Ring::new(n);
    let sched = Schedule::reduce_scatter(topo);
    // All routing decisions flow from the one schedule source.
    let configs: Vec<OutputConfig> = (0..n)
        .map(|d| OutputConfig::from_reduce_scatter_schedule(&sched, d))
        .collect();
    let fabric = Fabric::new(topo);

    // Global chunk geometry.
    let global_bounds: Vec<(u64, u64)> = (0..n)
        .map(|c| grid.chunk_wg_bounds(n as u64, c as u64))
        .collect();

    let gpus: Vec<Gpu> = (0..n)
        .map(|d| {
            // Local execution order: positions 0..n. On a ring,
            // position p is global chunk (d + p) % n and everything
            // leaves toward prev(d) (the ascending mirror-image
            // schedule); elsewhere the schedule-derived configuration
            // names both the chunk and its owner.
            let mut chunks = Vec::with_capacity(n);
            let mut cursor = 0u64;
            for p in 0..n {
                let (global_chunk, route, dest) = if is_ring {
                    let route = configs[0].route(p);
                    let dest = (p < n - 1).then(|| ring.prev(d));
                    ((d + p) % n, route, dest)
                } else {
                    let route = configs[d].route(p);
                    (configs[d].chunk_id(p), route, route.destination())
                };
                let incoming_passes = if is_ring {
                    usize::from(p >= 1)
                } else {
                    sched
                        .sends()
                        .filter(|s| s.dst == d && s.chunk == global_chunk)
                        .count()
                };
                let (g0, g1) = global_bounds[global_chunk];
                let size = g1 - g0;
                chunks.push(ChunkState {
                    wg_bounds: (cursor, cursor + size),
                    global_chunk,
                    bytes: grid.wg_range_output_bytes(g0, g1),
                    route,
                    dest,
                    incoming_passes,
                    triggered_wfs: 0,
                    expected_wfs: if route.tracked() {
                        count_nonempty_wfs(grid, g0, g1)
                    } else {
                        0
                    },
                    dma_fired: false,
                    feed_built: false,
                });
                cursor += size;
            }
            Gpu {
                mc: MemoryController::new(&sys.mem, build_policy(opts, sys)),
                llc: Llc::new(&sys.mem),
                gemm: GemmEngine::new(&sys.gpu, grid.clone()),
                tracker: Tracker::new(TrackerConfig::paper(grid.wf_tile_elems())),
                chunks,
                feed: VecDeque::new(),
                rs_update_seen: 0,
                dma_reading: None,
                dma_queue: VecDeque::new(),
                first_stage_done: false,
                gemm_done: false,
                finished_at: None,
                dma_transfers: 0,
            }
        })
        .collect();
    (gpus, fabric, global_bounds)
}

/// Feeds one device's fabric arrivals for this cycle into its memory
/// controller (phase A of the stepped loop). `ins` must be `Some`
/// only for the instrumented device.
fn deliver_incoming(
    gpu: &mut Gpu,
    now: Cycle,
    incoming: &[Incoming],
    ctx: &StepCtx,
    mut ins: Option<&mut Instruments>,
) {
    for &inc in incoming {
        if let Some(ins) = reborrow(&mut ins) {
            ins.record(
                now,
                Event::ChunkRecv {
                    chunk: inc.global_chunk as u64,
                    bytes: inc.bytes,
                },
            );
            ins.add("chunks.received", 1);
        }
        let pos = gpu
            .chunks
            .iter()
            .position(|c| c.global_chunk == inc.global_chunk)
            .expect("chunk routed to wrong GPU");
        if !gpu.chunks[pos].feed_built {
            for _ in 0..gpu.chunks[pos].incoming_passes {
                build_feed(
                    ctx.grid,
                    ctx.global_bounds[inc.global_chunk],
                    pos,
                    &mut gpu.feed,
                    ctx.elem_bytes,
                );
            }
            gpu.chunks[pos].feed_built = true;
        }
        gpu.mc.enqueue(
            StreamId::Comm,
            TrafficClass::RsUpdate,
            inc.bytes,
            ctx.update_cost,
        );
    }
}

/// One device's full per-cycle step: memory controller, incoming
/// update attribution, GEMM progress, DMA engine, trigger fires and
/// completion bookkeeping. Outgoing traffic goes through `sink` so
/// the sharded engine can defer it to its window barrier. `ins` must
/// be `Some` only for the instrumented device.
fn step_device(
    gpu: &mut Gpu,
    d: usize,
    now: Cycle,
    ctx: &StepCtx,
    sink: &mut SendSink,
    mut ins: Option<&mut Instruments>,
) {
    gpu.mc.step_traced(now, None, reborrow(&mut ins));

    // Attribute serviced incoming updates.
    let serviced = gpu.mc.stats().bytes(TrafficClass::RsUpdate);
    if serviced > gpu.rs_update_seen {
        let mut delta = serviced - gpu.rs_update_seen;
        gpu.rs_update_seen = serviced;
        while delta > 0 {
            let entry = gpu.feed.front_mut().expect("serviced more than announced");
            let take = delta.min(entry.region_bytes - entry.consumed_bytes);
            entry.consumed_bytes += take;
            delta -= take;
            if entry.consumed_bytes == entry.region_bytes {
                let e = *entry;
                gpu.feed.pop_front();
                let region_elems = e.region_bytes / ctx.elem_bytes;
                let updates = gpu.chunks[e.position].route.updates_per_element();
                if gpu
                    .tracker
                    .record_update(e.wf, e.addr, region_elems, region_elems, updates)
                    .is_some()
                {
                    gpu.chunks[e.position].triggered_wfs += 1;
                }
            }
        }
    }

    // GEMM progress.
    match gpu.gemm.step(now, &mut gpu.mc, &mut gpu.llc) {
        GemmEvent::Idle => {}
        GemmEvent::Finished => gpu.gemm_done = true,
        GemmEvent::StageStoresIssued {
            stage,
            wg_start,
            wg_end,
            bytes,
            started,
            compute_cycles,
        } => {
            if let Some(ins) = reborrow(&mut ins) {
                ins.record(
                    now,
                    Event::GemmStage {
                        stage,
                        wg_start,
                        wg_end,
                        start: started,
                        end: now,
                        bytes,
                        compute_cycles,
                    },
                );
                ins.add("gemm.stages", 1);
            }
            if !gpu.first_stage_done {
                let frac = gpu.mc.avg_occupancy_fraction();
                gpu.mc.observe_compute_intensity(frac);
                gpu.first_stage_done = true;
            }
            let mut wg = wg_start;
            while wg < wg_end {
                let pos = gpu
                    .chunks
                    .iter()
                    .position(|c| wg >= c.wg_bounds.0 && wg < c.wg_bounds.1)
                    .expect("wg outside chunk space");
                let upper = gpu.chunks[pos].wg_bounds.1.min(wg_end);
                // Bytes via the *global* chunk's tiles: local WG
                // index offsets map 1:1 onto the rotated global
                // range.
                let (g0, _) = ctx.global_bounds[gpu.chunks[pos].global_chunk];
                let local0 = gpu.chunks[pos].wg_bounds.0;
                let bytes = ctx
                    .grid
                    .wg_range_output_bytes(g0 + (wg - local0), g0 + (upper - local0));
                match gpu.chunks[pos].route {
                    ChunkRoute::RemoteUpdate { .. } => {
                        let dest = gpu.chunks[pos]
                            .dest
                            .expect("remote chunk has a destination");
                        sink.send_update(
                            now,
                            d,
                            dest,
                            gpu.chunks[pos].global_chunk as u64,
                            bytes,
                            reborrow(&mut ins),
                        );
                    }
                    ChunkRoute::LocalOnly { .. } | ChunkRoute::LocalThenDmaUpdate { .. } => {
                        gpu.mc.enqueue(
                            StreamId::Compute,
                            TrafficClass::GemmWrite,
                            bytes,
                            ctx.update_cost,
                        );
                        record_local(
                            ctx.grid,
                            gpu,
                            pos,
                            g0 + (wg - local0),
                            g0 + (upper - local0),
                            ctx.elem_bytes,
                        );
                    }
                    _ => unreachable!("fused RS uses no other routes"),
                }
                wg = upper;
            }
        }
    }

    // DMA engine: one source read in flight, then the fabric.
    if let Some((pos, target)) = gpu.dma_reading {
        if gpu.mc.stats().bytes(TrafficClass::RsRead) >= target {
            let chunk = gpu.chunks[pos].global_chunk as u64;
            let payload = gpu.chunks[pos].bytes;
            let dest = gpu.chunks[pos].dest.expect("DMA chunk has a destination");
            sink.send_dma(now, d, dest, chunk, payload, reborrow(&mut ins));
            gpu.dma_transfers += 1;
            gpu.dma_reading = None;
        }
    }
    if gpu.dma_reading.is_none() {
        if let Some(pos) = gpu.dma_queue.pop_front() {
            let target = gpu.mc.stats().bytes(TrafficClass::RsRead) + gpu.chunks[pos].bytes;
            gpu.mc.enqueue(
                StreamId::Comm,
                TrafficClass::RsRead,
                gpu.chunks[pos].bytes,
                1.0,
            );
            gpu.dma_reading = Some((pos, target));
        }
    }
    // Fire DMAs for completed steady-state chunks.
    for pos in 0..gpu.chunks.len() {
        let c = &mut gpu.chunks[pos];
        if c.route.uses_dma() && !c.dma_fired && c.triggered_wfs == c.expected_wfs {
            c.dma_fired = true;
            if let Some(ins) = reborrow(&mut ins) {
                ins.record(
                    now,
                    Event::DmaTriggerFire {
                        chunk: c.global_chunk as u64,
                        bytes: c.bytes,
                    },
                );
                ins.add("dma.triggers_fired", 1);
            }
            gpu.dma_queue.push_back(pos);
        }
    }

    // Completion bookkeeping (fabric payloads may still be in
    // flight toward a peer; that time belongs to the receiver,
    // which cannot finish before consuming them).
    let chunks_done = gpu
        .chunks
        .iter()
        .all(|c| !c.route.tracked() || c.triggered_wfs == c.expected_wfs);
    if gpu.finished_at.is_none()
        && gpu.gemm_done
        && chunks_done
        && gpu.feed.is_empty()
        && gpu.dma_reading.is_none()
        && gpu.dma_queue.is_empty()
        && gpu.mc.is_idle()
    {
        gpu.finished_at = Some(now);
    }
}

/// The next cycle strictly after `now` at which stepping this device
/// can change its observable state, assuming nothing new arrives from
/// the fabric. `None` when the device is inert until external input.
///
/// A pending DMA (queued or reading) pins the very next cycle: the
/// engine polls it every cycle and an un-serviced source read keeps
/// the memory controller busy anyway.
fn device_next_event(gpu: &Gpu, now: Cycle) -> Option<Cycle> {
    if gpu.dma_reading.is_some() || !gpu.dma_queue.is_empty() {
        return Some(now + 1);
    }
    min_event(gpu.mc.next_event(now), gpu.gemm.next_event(now, &gpu.mc))
}

/// Assembles the run result once every device has finished.
fn finish_result(gpus: &[Gpu], fabric: &Fabric) -> MultiGpuResult {
    let per_gpu_cycles: Vec<Cycle> = gpus
        .iter()
        .map(|g| g.finished_at.expect("all finished"))
        .collect();
    let max = *per_gpu_cycles.iter().max().expect("non-empty");
    let min = *per_gpu_cycles.iter().min().expect("non-empty");
    MultiGpuResult {
        cycles: max,
        skew: max - min,
        per_gpu_stats: gpus.iter().map(|g| g.mc.stats().clone()).collect(),
        dma_transfers: gpus.iter().map(|g| g.dma_transfers).sum(),
        link_bytes: fabric.link_bytes(),
        per_gpu_cycles,
    }
}

/// Runs the fused GEMM + reduce-scatter with every GPU simulated
/// explicitly over an arbitrary fabric. A ring topology reproduces
/// [`run_multi_gpu_fused_rs`] exactly; any other fabric runs the
/// direct schedule with multi-hop, per-link-contended traffic (see
/// the module docs).
///
/// `opts.mode` selects stepped or fast-forward time advancement; the
/// two are byte-identical (the stepped path is the reference kept for
/// the equivalence tests).
///
/// # Panics
///
/// Panics if the topology's GPU count differs from `sys.num_gpus`, if
/// the substrate cannot reduce in memory, or on non-convergence
/// (internal error).
pub fn run_multi_gpu_fused_rs_on(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
    topo: &Topology,
    mut ins: Option<&mut Instruments>,
) -> MultiGpuResult {
    let (mut gpus, mut fabric, global_bounds) = build_run(sys, &grid, opts, topo);
    let ctx = StepCtx {
        grid: &grid,
        global_bounds: &global_bounds,
        elem_bytes: grid.shape().elem_bytes,
        update_cost: opts.substrate.update_cost_multiplier(&sys.mem),
        mode: opts.mode,
    };

    let mut now: Cycle = 0;
    loop {
        for (d, gpu) in gpus.iter_mut().enumerate() {
            let mut dev_ins = if d == 0 { reborrow(&mut ins) } else { None };
            let incoming: Vec<Incoming> = fabric
                .deliveries_until(d, now)
                .into_iter()
                .map(Incoming::from)
                .collect();
            deliver_incoming(gpu, now, &incoming, &ctx, reborrow(&mut dev_ins));
            step_device(
                gpu,
                d,
                now,
                &ctx,
                &mut SendSink::Fabric(&mut fabric),
                dev_ins,
            );
        }

        let all_done = gpus.iter().all(|g| g.finished_at.is_some()) && fabric.busy_until() <= now;
        if all_done {
            break;
        }
        // Fast-forward leap: with every memory controller drained the
        // only future events are GEMM phase boundaries and fabric
        // arrivals; jump straight to the earliest one, replaying the
        // skipped idle cycles on each controller.
        now = if ctx.mode == SimMode::FastForward && gpus.iter().all(|g| g.mc.is_idle()) {
            let device_events = gpus.iter().filter_map(|g| device_next_event(g, now)).min();
            match min_event(device_events, fabric.next_event(now)) {
                Some(t) if t > now + 1 => {
                    for (d, gpu) in gpus.iter_mut().enumerate() {
                        let skip_ins = if d == 0 { reborrow(&mut ins) } else { None };
                        gpu.mc.skip_idle(now + 1, t, skip_ins);
                    }
                    t
                }
                _ => now + 1,
            }
        } else {
            now + 1
        };
        assert!(now < 4_000_000_000, "multi-GPU run failed to converge");
    }

    let result = finish_result(&gpus, &fabric);
    if let Some(ins) = reborrow(&mut ins) {
        let gpu0 = &gpus[0];
        ins.record(
            result.cycles,
            Event::LlcSample {
                hits: gpu0.llc.hits(),
                misses: gpu0.llc.misses(),
            },
        );
        if let Some(m) = ins.metrics.as_mut() {
            m.set("run.cycles", result.cycles);
            m.set("run.skew", result.skew);
            m.set("dma.transfers", result.dma_transfers);
            m.set("tracker.peak_entries", gpu0.tracker.peak_entries() as u64);
            m.set("llc.hits", gpu0.llc.hits());
            m.set("llc.misses", gpu0.llc.misses());
            m.record_traffic(gpu0.mc.stats());
        }
    }
    result
}

/// Simulates one device across the window `[t0, t_end)`, consuming its
/// pre-popped fabric arrivals and buffering outgoing sends into
/// `intents`. Fast-forward mode leaps idle gaps inside the window
/// exactly as the sequential engine does, clamped to the window end.
fn simulate_device_window(
    gpu: &mut Gpu,
    d: usize,
    t0: Cycle,
    t_end: Cycle,
    pend: &mut VecDeque<Arrival>,
    ctx: &StepCtx,
    intents: &mut Vec<SendIntent>,
) {
    let mut now = t0;
    while now < t_end {
        let mut incoming = Vec::new();
        while pend.front().is_some_and(|a| a.arrival <= now) {
            let a = pend.pop_front().expect("peeked entry exists");
            incoming.push(Incoming::from(a));
        }
        deliver_incoming(gpu, now, &incoming, ctx, None);
        step_device(gpu, d, now, ctx, &mut SendSink::Buffer(intents), None);

        let mut next = now + 1;
        if ctx.mode == SimMode::FastForward && gpu.mc.is_idle() {
            let pend_at = pend.front().map(|a| a.arrival.max(now + 1));
            let target =
                min_event(device_next_event(gpu, now), pend_at).map_or(t_end, |t| t.min(t_end));
            if target > next {
                gpu.mc.skip_idle(next, target, None);
                next = target;
            }
        }
        now = next;
    }
}

/// [`run_multi_gpu_fused_rs_on`] sharded across a pool of worker
/// threads with deterministic cycle-window barriers.
///
/// Devices are partitioned into contiguous shards, one per worker.
/// Each window spans `1 + min link latency` cycles — short enough
/// that no message sent inside a window can arrive within it (every
/// hop costs at least one serialisation cycle plus the link latency),
/// so a window's arrivals are fully known at its start. Workers
/// simulate their devices independently through the window, buffering
/// outgoing fabric sends; at the barrier the coordinator replays the
/// buffered sends into the shared fabric in the exact
/// `(cycle, device, program order)` the sequential loop would have
/// used, making the run byte-identical to the sequential engines at
/// every thread width.
///
/// Worker panics are re-raised on the coordinator in shard order
/// (lowest devices first) — the same ordered-merge discipline as
/// `t3-runtime`'s scheduler pool. Instrumentation is not supported on
/// this path; use [`run_multi_gpu_fused_rs_on`] to trace device 0.
///
/// # Panics
///
/// As [`run_multi_gpu_fused_rs_on`], plus any panic raised inside a
/// worker.
pub fn run_multi_gpu_fused_rs_sharded(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
    topo: &Topology,
    threads: usize,
) -> MultiGpuResult {
    let n = sys.num_gpus;
    let threads = threads.clamp(1, n);
    let (mut gpus, mut fabric, global_bounds) = build_run(sys, &grid, opts, topo);
    let ctx = StepCtx {
        grid: &grid,
        global_bounds: &global_bounds,
        elem_bytes: grid.shape().elem_bytes,
        update_cost: opts.substrate.update_cost_multiplier(&sys.mem),
        mode: opts.mode,
    };
    let window: Cycle = 1 + topo
        .links()
        .iter()
        .map(|l| l.cfg.latency_cycles())
        .min()
        .unwrap_or(0);
    let per = n.div_ceil(threads);

    let mut t0: Cycle = 0;
    loop {
        let t_end = t0 + window;
        // Pre-pop every arrival landing inside this window; nothing
        // sent during the window can land before `t_end`.
        let mut pending: Vec<VecDeque<Arrival>> = (0..n)
            .map(|d| fabric.deliveries_until(d, t_end - 1).into())
            .collect();

        let outcomes: Vec<thread::Result<Vec<SendIntent>>> = thread::scope(|scope| {
            let handles: Vec<_> = gpus
                .chunks_mut(per)
                .zip(pending.chunks_mut(per))
                .enumerate()
                .map(|(w, (gpu_shard, pend_shard))| {
                    let ctx = &ctx;
                    scope.spawn(move || {
                        let mut intents = Vec::new();
                        for (i, (gpu, pend)) in
                            gpu_shard.iter_mut().zip(pend_shard.iter_mut()).enumerate()
                        {
                            simulate_device_window(
                                gpu,
                                w * per + i,
                                t0,
                                t_end,
                                pend,
                                ctx,
                                &mut intents,
                            );
                        }
                        intents
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });

        // Ordered merge: replay every worker's buffered sends in the
        // sequential loop's (cycle, device, program order); re-raise
        // the first panic in shard order.
        let mut merged: Vec<SendIntent> = Vec::new();
        for outcome in outcomes {
            match outcome {
                Ok(intents) => merged.extend(intents),
                Err(payload) => resume_unwind(payload),
            }
        }
        merged.sort_by_key(|i| (i.cycle, i.src));
        for it in &merged {
            fabric.send_traced(it.cycle, it.src, it.dst, it.tag, it.bytes, None);
        }
        debug_assert!(
            pending.iter().all(VecDeque::is_empty),
            "window left arrivals unconsumed"
        );

        t0 = t_end;
        if gpus.iter().all(|g| g.finished_at.is_some()) && fabric.is_idle(t0 - 1) {
            break;
        }
        assert!(t0 < 4_000_000_000, "multi-GPU run failed to converge");
    }

    finish_result(&gpus, &fabric)
}

fn build_policy(
    opts: &FusedOptions,
    sys: &SystemConfig,
) -> Box<dyn t3_mem::arbiter::ArbitrationPolicy> {
    use crate::engine::PolicyChoice;
    use t3_mem::arbiter::{ComputeFirstPolicy, McaPolicy, RoundRobinPolicy};
    match opts.policy {
        PolicyChoice::RoundRobin => Box::new(RoundRobinPolicy::new()),
        PolicyChoice::ComputeFirst => Box::new(ComputeFirstPolicy::new()),
        PolicyChoice::McaDynamic => Box::new(McaPolicy::new(&sys.mem)),
        PolicyChoice::McaFixed(t) => Box::new(McaPolicy::with_fixed_threshold(t)),
    }
}

fn count_nonempty_wfs(grid: &GemmGrid, w0: u64, w1: u64) -> usize {
    let wfs = grid.wfs_per_wg();
    (w0..w1)
        .map(|wg| {
            let h = grid.wg_tile(wg).height as usize;
            (0..wfs)
                .filter(|&wf| {
                    let (r0, r1) = crate::fused::wf_rows(h, wfs, wf);
                    r1 > r0
                })
                .count()
        })
        .sum()
}

fn build_feed(
    grid: &GemmGrid,
    global_bounds: (u64, u64),
    position: usize,
    feed: &mut VecDeque<FeedEntry>,
    elem_bytes: u64,
) {
    let wfs = grid.wfs_per_wg();
    for wg in global_bounds.0..global_bounds.1 {
        let t = grid.wg_tile(wg);
        let (region_addr, _) = grid.wg_output_region(wg);
        for wf in 0..wfs {
            let (r0, r1) = crate::fused::wf_rows(t.height as usize, wfs, wf);
            let region_bytes = ((r1 - r0) as u64) * t.width * elem_bytes;
            if region_bytes == 0 {
                continue;
            }
            feed.push_back(FeedEntry {
                position,
                wf: WfId { wg, wf },
                addr: region_addr + (r0 as u64) * t.width * elem_bytes,
                region_bytes,
                consumed_bytes: 0,
            });
        }
    }
}

fn record_local(grid: &GemmGrid, gpu: &mut Gpu, pos: usize, w0: u64, w1: u64, elem_bytes: u64) {
    let wfs = grid.wfs_per_wg();
    let updates = gpu.chunks[pos].route.updates_per_element();
    for wg in w0..w1 {
        let t = grid.wg_tile(wg);
        let (region_addr, _) = grid.wg_output_region(wg);
        for wf in 0..wfs {
            let (r0, r1) = crate::fused::wf_rows(t.height as usize, wfs, wf);
            let elems = ((r1 - r0) as u64) * t.width;
            if elems == 0 {
                continue;
            }
            let addr = region_addr + (r0 as u64) * t.width * elem_bytes;
            if gpu
                .tracker
                .record_update(WfId { wg, wf }, addr, elems, elems, updates)
                .is_some()
            {
                gpu.chunks[pos].triggered_wfs += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_fused_gemm_rs;
    use t3_gpu::gemm::GemmShape;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    fn grid_of(sys: &SystemConfig) -> GemmGrid {
        GemmGrid::new(&sys.gpu, GemmShape::new(4096, 4096, 512))
    }

    fn small_grid(sys: &SystemConfig) -> GemmGrid {
        GemmGrid::new(&sys.gpu, GemmShape::new(2048, 2048, 512))
    }

    fn opts_in(mode: SimMode) -> FusedOptions {
        FusedOptions {
            mode,
            ..FusedOptions::default()
        }
    }

    #[test]
    fn all_gpus_complete_with_zero_skew() {
        // Fully homogeneous inputs: every GPU must finish at the same
        // cycle (this is the paper's homogeneity argument made exact).
        let s = sys();
        let r = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        assert_eq!(r.skew, 0, "homogeneous GPUs must not skew");
        assert_eq!(r.per_gpu_cycles.len(), s.num_gpus);
        assert_eq!(r.dma_transfers, (s.num_gpus * (s.num_gpus - 2)) as u64);
    }

    #[test]
    fn ring_topology_reproduces_seed_timing() {
        // Pinned regression: the fabric-based ring path must produce
        // the exact cycle counts the dedicated per-GPU-link
        // implementation produced before the topology refactor.
        let s = sys();
        let r = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        assert_eq!(r.cycles, 438_774);
        assert_eq!(r.skew, 0);
        assert_eq!(r.dma_transfers, 48);
        let mut s4 = sys();
        s4.num_gpus = 4;
        let g4 = GemmGrid::new(&s4.gpu, GemmShape::new(2048, 2048, 512));
        let r4 = run_multi_gpu_fused_rs(&s4, g4, &FusedOptions::default());
        assert_eq!(r4.cycles, 120_365);
        assert_eq!(r4.dma_transfers, 8);
    }

    #[test]
    fn fast_forward_run_is_byte_identical_to_stepped() {
        // The default engine leaps idle gaps; the stepped reference
        // walks every cycle. Their results must agree bit for bit.
        let mut s = sys();
        s.num_gpus = 4;
        let grid = small_grid(&s);
        let stepped = run_multi_gpu_fused_rs(&s, grid.clone(), &opts_in(SimMode::Stepped));
        let fast = run_multi_gpu_fused_rs(&s, grid, &opts_in(SimMode::FastForward));
        assert_eq!(format!("{stepped:?}"), format!("{fast:?}"));
    }

    #[test]
    fn instrumented_fast_forward_traces_match_stepped() {
        // Skipped idle cycles must replay their side effects exactly:
        // the tracer's sampled MC depth stream, event sequence numbers
        // and every metrics counter have to match the stepped run.
        let mut s = sys();
        s.num_gpus = 4;
        let grid = small_grid(&s);
        let mut a = Instruments::full();
        let mut b = Instruments::full();
        let stepped = run_multi_gpu_fused_rs_instrumented(
            &s,
            grid.clone(),
            &opts_in(SimMode::Stepped),
            Some(&mut a),
        );
        let fast = run_multi_gpu_fused_rs_instrumented(
            &s,
            grid,
            &opts_in(SimMode::FastForward),
            Some(&mut b),
        );
        assert_eq!(stepped.cycles, fast.cycles);
        let ta = a.tracer.as_ref().expect("tracer on").records();
        let tb = b.tracer.as_ref().expect("tracer on").records();
        assert_eq!(format!("{ta:?}"), format!("{tb:?}"));
        let ma = a.metrics.as_ref().expect("metrics on").to_json();
        let mb = b.metrics.as_ref().expect("metrics on").to_json();
        assert_eq!(ma, mb);
    }

    #[test]
    fn sharded_run_matches_sequential_at_every_width() {
        let mut s = sys();
        s.num_gpus = 4;
        let grid = small_grid(&s);
        let topo = Topology::ring(s.num_gpus, &s.link);
        let seq =
            run_multi_gpu_fused_rs_on(&s, grid.clone(), &FusedOptions::default(), &topo, None);
        for threads in [1, 2, 3, 8] {
            let sh = run_multi_gpu_fused_rs_sharded(
                &s,
                grid.clone(),
                &FusedOptions::default(),
                &topo,
                threads,
            );
            assert_eq!(
                format!("{seq:?}"),
                format!("{sh:?}"),
                "threads={threads} diverged from the sequential engine"
            );
        }
    }

    #[test]
    fn sharded_run_matches_sequential_on_a_switch_fabric() {
        // Multi-hop routes share switch ports across devices; the
        // barrier replay must reproduce that contention exactly, in
        // both time-advancement modes.
        let mut s = sys();
        s.num_gpus = 4;
        let grid = small_grid(&s);
        let topo = Topology::switch(s.num_gpus, &s.link);
        for mode in [SimMode::Stepped, SimMode::FastForward] {
            let seq = run_multi_gpu_fused_rs_on(&s, grid.clone(), &opts_in(mode), &topo, None);
            let sh = run_multi_gpu_fused_rs_sharded(&s, grid.clone(), &opts_in(mode), &topo, 2);
            assert_eq!(
                format!("{seq:?}"),
                format!("{sh:?}"),
                "{} diverged",
                mode.label()
            );
        }
    }

    #[test]
    fn sharded_run_reproduces_the_pinned_ring_timing() {
        let s = sys();
        let topo = Topology::ring(s.num_gpus, &s.link);
        let r = run_multi_gpu_fused_rs_sharded(&s, grid_of(&s), &FusedOptions::default(), &topo, 4);
        assert_eq!(r.cycles, 438_774);
        assert_eq!(r.skew, 0);
        assert_eq!(r.dma_transfers, 48);
    }

    #[test]
    fn explicit_topology_ring_matches_wrapper_exactly() {
        let s = sys();
        let topo = Topology::ring(s.num_gpus, &s.link);
        let via_topo =
            run_multi_gpu_fused_rs_on(&s, small_grid(&s), &FusedOptions::default(), &topo, None);
        let wrapper = run_multi_gpu_fused_rs(&s, small_grid(&s), &FusedOptions::default());
        assert_eq!(via_topo.cycles, wrapper.cycles);
        assert_eq!(via_topo.per_gpu_cycles, wrapper.per_gpu_cycles);
        assert_eq!(via_topo.link_bytes, wrapper.link_bytes);
    }

    #[test]
    fn mirrored_methodology_validation() {
        // The explicit N-GPU run and the mirrored single-GPU run must
        // agree closely (paper Section 5.1.1's justification).
        let s = sys();
        let explicit = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        let mirrored = run_fused_gemm_rs(&s, grid_of(&s), &FusedOptions::default());
        let err = explicit.mirror_error(&mirrored);
        assert!(
            err < 0.05,
            "mirrored methodology off by {:.1}% ({} vs {})",
            err * 100.0,
            explicit.cycles,
            mirrored.cycles
        );
    }

    #[test]
    fn per_gpu_traffic_is_homogeneous() {
        let s = sys();
        let r = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        let first = r.per_gpu_stats[0].total();
        for (d, stats) in r.per_gpu_stats.iter().enumerate() {
            let diff = (stats.total() as i64 - first as i64).unsigned_abs();
            assert!(
                diff < 1 << 20,
                "GPU {d} traffic {} deviates from GPU 0 {}",
                stats.total(),
                first
            );
        }
    }

    #[test]
    fn two_gpu_explicit_ring() {
        let mut s = sys();
        s.num_gpus = 2;
        let r = run_multi_gpu_fused_rs(&s, grid_of(&s), &FusedOptions::default());
        assert_eq!(r.dma_transfers, 0);
        assert_eq!(r.skew, 0);
    }

    /// Per-link wire bytes predicted from the schedule and the grid's
    /// actual chunk geometry: every send contributes its full chunk to
    /// each hop of its route.
    fn predicted_bytes(topo: &Topology, grid: &GemmGrid) -> Vec<Bytes> {
        let n = topo.num_gpus() as u64;
        let sched = Schedule::reduce_scatter(topo);
        let mut per_link = vec![0u64; topo.num_links()];
        for send in sched.sends() {
            let (g0, g1) = grid.chunk_wg_bounds(n, send.chunk as u64);
            let bytes = grid.wg_range_output_bytes(g0, g1);
            for id in &send.route {
                per_link[id.0] += bytes;
            }
        }
        per_link
    }

    #[test]
    fn non_ring_fabrics_complete_with_exact_byte_accounting() {
        let s = sys();
        let grid = small_grid(&s);
        for topo in [
            Topology::switch(s.num_gpus, &s.link),
            Topology::torus2d(2, 4, &s.link),
            Topology::hierarchical(2, 4, &s.link, &s.link),
        ] {
            let r =
                run_multi_gpu_fused_rs_on(&s, grid.clone(), &FusedOptions::default(), &topo, None);
            let label = topo.kind().label();
            assert!(r.cycles > 0, "{label}: no progress");
            assert!(
                r.per_gpu_cycles.iter().all(|&c| c > 0 && c <= r.cycles),
                "{label}: inconsistent per-GPU times"
            );
            // Direct schedule: all traffic is fine-grained remote
            // updates, no DMAs.
            assert_eq!(r.dma_transfers, 0, "{label}: direct RS uses no DMA");
            assert_eq!(
                r.link_bytes,
                predicted_bytes(&topo, &grid),
                "{label}: observed wire bytes diverge from the schedule"
            );
        }
    }

    #[test]
    fn slow_inter_node_links_slow_the_hierarchical_run() {
        let s = sys();
        let grid = small_grid(&s);
        let mut slow = s.link.clone();
        slow.link_gb_s /= 8.0;
        slow.latency_ns *= 4.0;
        let uniform = Topology::hierarchical(2, 4, &s.link, &s.link);
        let bottleneck = Topology::hierarchical(2, 4, &s.link, &slow);
        let fast =
            run_multi_gpu_fused_rs_on(&s, grid.clone(), &FusedOptions::default(), &uniform, None);
        let slowed =
            run_multi_gpu_fused_rs_on(&s, grid, &FusedOptions::default(), &bottleneck, None);
        assert!(
            slowed.cycles > fast.cycles,
            "slow inter-node links must cost cycles ({} <= {})",
            slowed.cycles,
            fast.cycles
        );
    }

    #[test]
    fn switch_fabric_run_is_traced() {
        let s = sys();
        let mut ins = Instruments::full();
        let topo = Topology::switch(s.num_gpus, &s.link);
        let r = run_multi_gpu_fused_rs_on(
            &s,
            small_grid(&s),
            &FusedOptions::default(),
            &topo,
            Some(&mut ins),
        );
        let m = ins.metrics.as_ref().expect("metrics on");
        assert_eq!(m.counter("run.cycles"), r.cycles);
        // Device 0's outgoing remote updates all cross its switch
        // port, which the tracer observed.
        assert!(m.counter("link.bytes_sent") > 0);
        assert!(m.counter("chunks.received") > 0);
        let tracer = ins.tracer.as_ref().expect("tracer on");
        assert!(tracer.count(|e| matches!(e, Event::LinkBusy { .. })) > 0);
    }
}
