//! Functional fused GEMM-collective execution.
//!
//! This module proves T3's central claim at the data level: routing a
//! tiled GEMM's stores through the address-space configuration
//! (Section 4.4), reducing them with near-memory op-and-store updates
//! (Section 4.3), and firing pre-programmed DMAs from the Tracker
//! (Section 4.2) yields exactly the same result as running the GEMM to
//! completion and then executing the collective — with no GEMM-kernel
//! changes and no collective kernel at all.
//!
//! Every device's output buffer uses the *tile-ordered* layout of
//! [`GemmGrid::wg_output_region`]: one contiguous region per
//! workgroup. Collective chunks are therefore contiguous WG ranges
//! (Section 4.2.1's WF-granularity tracking exists precisely because
//! the *row-major* view of those regions is not contiguous).
//!
//! Provided fusions (Sections 4 and 7.1):
//!
//! * [`fused_gemm_ring_rs`] — ring reduce-scatter (the paper's focus);
//! * [`fused_gemm_direct_rs`] — direct reduce-scatter on a
//!   fully-connected topology;
//! * [`fused_gemm_all_to_all`] — the expert-parallel exchange.

use crate::addrmap::{ChunkRoute, OutputConfig};
use crate::tracker::{Tracker, TrackerConfig, WfId};
use t3_collectives::gemm::{matmul_tile, matmul_tile_krange};
use t3_gpu::gemm::{GemmGrid, GemmShape};
use t3_mem::nmc::NmcBuffer;
use t3_net::ring::Ring;
use t3_sim::config::GpuConfig;

/// One device's sliced GEMM inputs: row-major `A[m, k]` and `B[k, n]`
/// where `k` is this device's slice of the dot-product dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedProducer {
    /// Row-major `m x k` input activations.
    pub a: Vec<f32>,
    /// Row-major `k x n` weight slice.
    pub b: Vec<f32>,
}

/// Result of a functional fused execution.
#[derive(Debug, Clone)]
pub struct FusedOutcome {
    /// Per-device output buffers in tile-ordered layout. After a
    /// reduce-scatter fusion, only each device's owned chunk is fully
    /// reduced (like NCCL, other regions are unspecified partials).
    pub outputs: Vec<NmcBuffer>,
    /// Element range `[start, end)` of each collective chunk in the
    /// tile-ordered layout, indexed by chunk id.
    pub chunk_ranges: Vec<(usize, usize)>,
    /// High-water mark of simultaneous Tracker entries across devices
    /// (hardware-sizing check; the paper's Tracker is sized for the
    /// WGs of one producer stage).
    pub peak_tracker_entries: usize,
    /// Total Tracker triggers fired across devices.
    pub triggers_fired: u64,
    /// Total DMA transfers performed (ring-RS: `N x (N-2)`).
    pub dma_transfers: u64,
}

impl FusedOutcome {
    /// Convenience: the fully-reduced owned chunk of `device` after a
    /// ring reduce-scatter fusion.
    pub fn owned_chunk(&self, ring: Ring, device: usize) -> &[f32] {
        let chunk = ring.rs_owned_chunk(device);
        let (s, e) = self.chunk_ranges[chunk];
        &self.outputs[device].as_slice()[s..e]
    }
}

/// Converts a row-major `m x n` matrix into the tile-ordered layout of
/// `grid` (one contiguous region per WG tile, row-major within each
/// tile). Useful for comparing fused outputs against row-major
/// references.
pub fn to_tile_order(grid: &GemmGrid, row_major: &[f32]) -> Vec<f32> {
    let shape = grid.shape();
    let (m, n) = (shape.m as usize, shape.n as usize);
    assert_eq!(row_major.len(), m * n, "matrix shape mismatch");
    let mut out = vec![0.0f32; m * n];
    let elem_bytes = shape.elem_bytes as usize;
    for wg in 0..grid.num_wgs() {
        let t = grid.wg_tile(wg);
        let (addr, _) = grid.wg_output_region(wg);
        let base = (addr - grid.c_base()) as usize / elem_bytes;
        for r in 0..t.height as usize {
            for c in 0..t.width as usize {
                let src = (t.row as usize * grid.tile_dim() as usize + r) * n
                    + t.col as usize * grid.tile_dim() as usize
                    + c;
                out[base + r * t.width as usize + c] = row_major[src];
            }
        }
    }
    out
}

/// Fused ring reduce-scatter (Figure 7). Devices execute their
/// chunk-staggered GEMMs step-synchronously; position-0 chunks leave
/// as fine-grained remote updates, steady-state chunks as
/// Tracker-triggered DMA updates.
///
/// # Panics
///
/// Panics if the producer count is below two or input shapes mismatch.
pub fn fused_gemm_ring_rs(
    gpu: &GpuConfig,
    shape: GemmShape,
    producers: &[FusedProducer],
) -> FusedOutcome {
    fused_gemm_ring_rs_split_k(gpu, shape, producers, 1)
}

/// Fused ring reduce-scatter with a split-K producer (Section 7.7):
/// `split_k` workgroups cooperate on each output tile, each updating
/// the tile with a partial product over its K slice; the Tracker's
/// thresholds come from
/// [`OutputConfig::ring_reduce_scatter_split_k`], so DMAs fire only
/// once every partial (and the incoming copy) has landed.
///
/// # Panics
///
/// Panics if `split_k` is zero or exceeds the K dimension.
pub fn fused_gemm_ring_rs_split_k(
    gpu: &GpuConfig,
    shape: GemmShape,
    producers: &[FusedProducer],
    split_k: u32,
) -> FusedOutcome {
    assert!(
        split_k >= 1 && split_k as u64 <= shape.k,
        "split_k must be in 1..=K"
    );
    let n_dev = producers.len();
    let ring = Ring::new(n_dev);
    let configs: Vec<OutputConfig> = (0..n_dev)
        .map(|d| OutputConfig::ring_reduce_scatter_split_k(ring, d, split_k))
        .collect();
    run_fused(gpu, shape, producers, &configs, false, split_k)
}

/// Fused direct reduce-scatter on a fully-connected topology
/// (Section 7.1): the collective disappears into the GEMM's remote
/// stores; device `d` owns chunk `d`.
pub fn fused_gemm_direct_rs(
    gpu: &GpuConfig,
    shape: GemmShape,
    producers: &[FusedProducer],
) -> FusedOutcome {
    let n_dev = producers.len();
    assert!(n_dev >= 2, "need at least two devices");
    let configs: Vec<OutputConfig> = (0..n_dev)
        .map(|d| OutputConfig::direct_reduce_scatter(n_dev, d))
        .collect();
    run_fused(gpu, shape, producers, &configs, false, 1)
}

/// Fused all-to-all (Section 7.1): chunk `j` of device `d`'s output is
/// remote-stored into slot `d` of device `j`'s buffer; nothing is
/// reduced.
///
/// # Panics
///
/// Panics unless the WG count divides evenly by the device count
/// (all-to-all needs equal chunks).
pub fn fused_gemm_all_to_all(
    gpu: &GpuConfig,
    shape: GemmShape,
    producers: &[FusedProducer],
) -> FusedOutcome {
    let n_dev = producers.len();
    assert!(n_dev >= 2, "need at least two devices");
    let grid = GemmGrid::new(gpu, shape);
    assert!(
        grid.num_wgs().is_multiple_of(n_dev as u64),
        "all-to-all fusion needs WGs divisible by devices"
    );
    let configs: Vec<OutputConfig> = (0..n_dev)
        .map(|d| OutputConfig::all_to_all(n_dev, d))
        .collect();
    run_fused(gpu, shape, producers, &configs, true, 1)
}

/// Fused ring all-gather (Section 7.1): each device computes only its
/// own shard (chunk `d`), stores it locally, and the Tracker-triggered
/// DMA *stores* (no reduction) propagate every shard around the ring.
/// Forwarding is also Tracker-driven: an arriving shard completes its
/// (1 update/element) tracking and re-triggers the DMA for the next
/// hop until the shard has visited every device.
///
/// Afterwards, chunk `c` of every device's buffer equals device `c`'s
/// locally-computed shard.
///
/// # Panics
///
/// Panics if fewer than two producers are given or shapes mismatch.
pub fn fused_gemm_ring_ag(
    gpu: &GpuConfig,
    shape: GemmShape,
    producers: &[FusedProducer],
) -> FusedOutcome {
    let n_dev = producers.len();
    assert!(n_dev >= 2, "need at least two devices");
    let ring = Ring::new(n_dev);
    let (m, n, k) = (shape.m as usize, shape.n as usize, shape.k as usize);
    for (d, p) in producers.iter().enumerate() {
        assert_eq!(p.a.len(), m * k, "device {d}: A shape mismatch");
        assert_eq!(p.b.len(), k * n, "device {d}: B shape mismatch");
    }
    let grid = GemmGrid::new(gpu, shape);
    let elem_bytes = shape.elem_bytes;
    let wfs = grid.wfs_per_wg();

    // Tile-ordered element offsets and chunk ranges, as in `run_fused`.
    let mut wg_elem_start = Vec::with_capacity(grid.num_wgs() as usize + 1);
    let mut acc = 0usize;
    for wg in 0..grid.num_wgs() {
        wg_elem_start.push(acc);
        acc += (grid.wg_output_bytes(wg) / elem_bytes) as usize;
    }
    wg_elem_start.push(acc);
    let chunk_wg_bounds: Vec<(u64, u64)> = (0..n_dev)
        .map(|c| grid.chunk_wg_bounds(n_dev as u64, c as u64))
        .collect();
    let chunk_ranges: Vec<(usize, usize)> = chunk_wg_bounds
        .iter()
        .map(|&(w0, w1)| (wg_elem_start[w0 as usize], wg_elem_start[w1 as usize]))
        .collect();

    let mut outputs: Vec<NmcBuffer> = (0..n_dev).map(|_| NmcBuffer::new(acc)).collect();
    let mut trackers: Vec<Tracker> = (0..n_dev)
        .map(|_| Tracker::new(TrackerConfig::paper(grid.wf_tile_elems())))
        .collect();
    let mut triggers = 0u64;
    let mut dma_transfers = 0u64;
    let mut peak = 0usize;

    // Records 1-update/element tracking for a chunk at `device`; store
    // semantics complete each WF region in one pass.
    let track_chunk =
        |trackers: &mut Vec<Tracker>, triggers: &mut u64, device: usize, chunk: usize| {
            let (w0, w1) = chunk_wg_bounds[chunk];
            for wg in w0..w1 {
                let t = grid.wg_tile(wg);
                let region = wg_elem_start[wg as usize] as u64 * elem_bytes;
                for wf in 0..wfs {
                    let (r0, r1) = wf_rows(t.height as usize, wfs, wf);
                    let elems = ((r1 - r0) as u64) * t.width;
                    if elems == 0 {
                        continue;
                    }
                    let addr = region + (r0 as u64) * t.width * elem_bytes;
                    if trackers[device]
                        .record_update(WfId { wg, wf }, addr, elems, elems, 1)
                        .is_some()
                    {
                        *triggers += 1;
                    }
                }
            }
        };

    // Step 0: every device computes its own shard and stores it.
    for (d, producer) in producers.iter().enumerate() {
        let (w0, w1) = chunk_wg_bounds[d];
        for wg in w0..w1 {
            let t = grid.wg_tile(wg);
            let tile = matmul_tile(
                &producer.a,
                &producer.b,
                m,
                n,
                k,
                (t.row * grid.tile_dim()) as usize,
                (t.col * grid.tile_dim()) as usize,
                t.height as usize,
                t.width as usize,
            );
            outputs[d].store_slice(wg_elem_start[wg as usize], &tile);
        }
        track_chunk(&mut trackers, &mut triggers, d, d);
    }
    // Steps 1..N-1: Tracker-triggered DMA stores forward each shard one
    // hop per step; arrivals are tracked and re-trigger forwarding.
    for step in 0..ring.steps() {
        for d in 0..n_dev {
            // The shard device d forwards at this step.
            let chunk = (d + n_dev - step) % n_dev;
            let dst = ring.next(d);
            let (s, e) = chunk_ranges[chunk];
            if s == e {
                continue;
            }
            let data = outputs[d].as_slice()[s..e].to_vec();
            outputs[dst].store_slice(s, &data);
            dma_transfers += 1;
            track_chunk(&mut trackers, &mut triggers, dst, chunk);
        }
        peak = peak.max(
            trackers
                .iter()
                .map(Tracker::peak_entries)
                .max()
                .unwrap_or(0),
        );
    }

    FusedOutcome {
        outputs,
        chunk_ranges,
        peak_tracker_entries: peak,
        triggers_fired: triggers,
        dma_transfers,
    }
}

/// Rows `[r0, r1)` of a `height`-row tile covered by wavefront `wf` of
/// `wfs` (the WF-tile split of Section 4.2.1).
pub fn wf_rows(height: usize, wfs: u32, wf: u32) -> (usize, usize) {
    let wfs = wfs as usize;
    let wf = wf as usize;
    assert!(wf < wfs, "wavefront index out of range");
    (height * wf / wfs, height * (wf + 1) / wfs)
}

struct DeviceState {
    tracker: Tracker,
    /// Triggered WFs per chunk position.
    triggered_wfs: Vec<usize>,
    /// Non-empty WFs per chunk position (trigger target).
    expected_wfs: Vec<usize>,
}

fn run_fused(
    gpu: &GpuConfig,
    shape: GemmShape,
    producers: &[FusedProducer],
    configs: &[OutputConfig],
    all_to_all_slots: bool,
    split_k: u32,
) -> FusedOutcome {
    let n_dev = producers.len();
    assert!(n_dev >= 2, "need at least two devices");
    assert_eq!(configs.len(), n_dev, "one config per device");
    let (m, n, k) = (shape.m as usize, shape.n as usize, shape.k as usize);
    for (d, p) in producers.iter().enumerate() {
        assert_eq!(p.a.len(), m * k, "device {d}: A shape mismatch");
        assert_eq!(p.b.len(), k * n, "device {d}: B shape mismatch");
    }
    let grid = GemmGrid::new(gpu, shape);
    let elem_bytes = shape.elem_bytes;
    let num_wgs = grid.num_wgs();

    // Prefix offsets of WG regions in elements (tile-ordered layout).
    let mut wg_elem_start = Vec::with_capacity(num_wgs as usize + 1);
    let mut acc = 0usize;
    for wg in 0..num_wgs {
        wg_elem_start.push(acc);
        acc += (grid.wg_output_bytes(wg) / elem_bytes) as usize;
    }
    wg_elem_start.push(acc);
    let total_elems = acc;

    // Chunk geometry (shared by all devices).
    let num_chunks = configs[0].num_chunks();
    let chunk_wg_bounds: Vec<(u64, u64)> = (0..num_chunks)
        .map(|c| grid.chunk_wg_bounds(num_chunks as u64, c as u64))
        .collect();
    let chunk_ranges: Vec<(usize, usize)> = chunk_wg_bounds
        .iter()
        .map(|&(w0, w1)| (wg_elem_start[w0 as usize], wg_elem_start[w1 as usize]))
        .collect();
    let chunk_of_wg = |wg: u64| -> usize {
        chunk_wg_bounds
            .iter()
            .position(|&(w0, w1)| wg >= w0 && wg < w1)
            .expect("wg outside all chunks")
    };

    // Expected non-empty WFs per chunk (same for all devices).
    let wfs = grid.wfs_per_wg();
    let expected_wfs_per_chunk: Vec<usize> = chunk_wg_bounds
        .iter()
        .map(|&(w0, w1)| {
            (w0..w1)
                .map(|wg| {
                    let h = grid.wg_tile(wg).height as usize;
                    (0..wfs)
                        .filter(|&wf| {
                            let (r0, r1) = wf_rows(h, wfs, wf);
                            r1 > r0
                        })
                        .count()
                })
                .sum()
        })
        .collect();

    let mut outputs: Vec<NmcBuffer> = (0..n_dev).map(|_| NmcBuffer::new(total_elems)).collect();
    let mut devices: Vec<DeviceState> = configs
        .iter()
        .map(|cfg| DeviceState {
            tracker: Tracker::new(TrackerConfig::paper(grid.wf_tile_elems())),
            triggered_wfs: vec![0; cfg.num_chunks()],
            expected_wfs: (0..cfg.num_chunks())
                .map(|p| expected_wfs_per_chunk[cfg.chunk_id(p)])
                .collect(),
        })
        .collect();

    let mut dma_transfers = 0u64;

    // Records updates for the WFs of `wg` at `device`, with the
    // tile already laid out at `region_start`.
    let record_wg = |devices: &mut Vec<DeviceState>,
                     configs: &[OutputConfig],
                     device: usize,
                     wg: u64,
                     height: usize,
                     width: usize,
                     region_start: usize| {
        let chunk = chunk_of_wg(wg);
        let pos = configs[device].position_of_chunk(chunk);
        if !configs[device].route(pos).tracked() {
            return;
        }
        let updates = configs[device].route(pos).updates_per_element();
        let state = &mut devices[device];
        for wf in 0..wfs {
            let (r0, r1) = wf_rows(height, wfs, wf);
            let elems = ((r1 - r0) * width) as u64;
            let addr = (region_start + r0 * width) as u64 * elem_bytes;
            if let Some(_trigger) =
                state
                    .tracker
                    .record_update(WfId { wg, wf }, addr, elems, elems, updates)
            {
                state.triggered_wfs[pos] += 1;
            }
        }
    };

    for p in 0..num_chunks {
        // Phase 1: every device computes its position-p chunk and
        // routes the stores per its address-space configuration.
        for d in 0..n_dev {
            let cfg = &configs[d];
            let chunk = cfg.chunk_id(p);
            let route = cfg.route(p);
            let (w0, w1) = chunk_wg_bounds[chunk];
            for wg in w0..w1 {
                let t = grid.wg_tile(wg);
                let (h, w) = (t.height as usize, t.width as usize);
                let region_start = wg_elem_start[wg as usize];
                // A split-K producer runs `split_k` cooperating WGs per
                // tile, each contributing a partial product over its K
                // slice as a separate near-memory update (Section 7.7).
                for slice in 0..split_k as usize {
                    let k0 = k * slice / split_k as usize;
                    let k1 = k * (slice + 1) / split_k as usize;
                    let tile = if split_k == 1 {
                        matmul_tile(
                            &producers[d].a,
                            &producers[d].b,
                            m,
                            n,
                            k,
                            (t.row * grid.tile_dim()) as usize,
                            (t.col * grid.tile_dim()) as usize,
                            h,
                            w,
                        )
                    } else {
                        matmul_tile_krange(
                            &producers[d].a,
                            &producers[d].b,
                            m,
                            n,
                            k,
                            (t.row * grid.tile_dim()) as usize,
                            (t.col * grid.tile_dim()) as usize,
                            h,
                            w,
                            k0,
                            k1,
                        )
                    };
                    match route {
                        ChunkRoute::LocalOnly { .. } | ChunkRoute::LocalThenDmaUpdate { .. } => {
                            outputs[d].update_slice(region_start, &tile);
                            record_wg(&mut devices, configs, d, wg, h, w, region_start);
                        }
                        ChunkRoute::LocalThenDmaStore { .. } => {
                            assert_eq!(split_k, 1, "store routes cannot be split-K");
                            outputs[d].store_slice(region_start, &tile);
                            record_wg(&mut devices, configs, d, wg, h, w, region_start);
                        }
                        ChunkRoute::RemoteUpdate { device } => {
                            // Fine-grained peer-to-peer updates; tracked
                            // at the destination.
                            outputs[device].update_slice(region_start, &tile);
                            record_wg(&mut devices, configs, device, wg, h, w, region_start);
                        }
                        ChunkRoute::RemoteStore { device } => {
                            assert_eq!(split_k, 1, "store routes cannot be split-K");
                            let dst_start = if all_to_all_slots {
                                // Slot `d` of the destination: same-size
                                // chunks guaranteed by the caller.
                                let (slot_s, _) = chunk_ranges[d];
                                let (chunk_s, _) = chunk_ranges[chunk];
                                slot_s + (region_start - chunk_s)
                            } else {
                                region_start
                            };
                            // Plain remote stores (all-to-all) need no
                            // reduction and trigger nothing downstream,
                            // so the destination does not track them.
                            outputs[device].store_slice(dst_start, &tile);
                        }
                    }
                }
            }
        }
        // Phase 2: Tracker-triggered DMAs for position-p chunks.
        for d in 0..n_dev {
            let cfg = &configs[d];
            let route = cfg.route(p);
            if !route.uses_dma() {
                continue;
            }
            let dest = route.destination().expect("DMA route has a destination");
            assert_eq!(
                devices[d].triggered_wfs[p], devices[d].expected_wfs[p],
                "device {d}: DMA for position {p} fired before tracking completed"
            );
            let chunk = cfg.chunk_id(p);
            let (s, e) = chunk_ranges[chunk];
            let data = outputs[d].as_slice()[s..e].to_vec();
            match route {
                ChunkRoute::LocalThenDmaUpdate { .. } => {
                    outputs[dest].update_slice(s, &data);
                }
                ChunkRoute::LocalThenDmaStore { .. } => {
                    outputs[dest].store_slice(s, &data);
                }
                _ => unreachable!(),
            }
            dma_transfers += 1;
            // The DMA carries (wg, wf) metadata so the destination
            // tracker counts the incoming updates (Section 4.2.2).
            let (w0, w1) = chunk_wg_bounds[chunk];
            for wg in w0..w1 {
                let t = grid.wg_tile(wg);
                record_wg(
                    &mut devices,
                    configs,
                    dest,
                    wg,
                    t.height as usize,
                    t.width as usize,
                    wg_elem_start[wg as usize],
                );
            }
        }
    }

    // Every tracked chunk must have completed.
    for (d, state) in devices.iter().enumerate() {
        for p in 0..num_chunks {
            if configs[d].route(p).tracked() {
                assert_eq!(
                    state.triggered_wfs[p], state.expected_wfs[p],
                    "device {d} position {p} incomplete"
                );
            }
        }
        assert_eq!(state.tracker.live_entries(), 0, "device {d} leaked entries");
    }

    FusedOutcome {
        peak_tracker_entries: devices
            .iter()
            .map(|s| s.tracker.peak_entries())
            .max()
            .unwrap_or(0),
        triggers_fired: devices.iter().map(|s| s.tracker.triggers_fired()).sum(),
        outputs,
        chunk_ranges,
        dma_transfers,
    }
}

#[allow(clippy::needless_range_loop)] // -- index loops mirror the per-element reference math being checked
#[cfg(test)]
mod tests {
    use super::*;
    use t3_collectives::gemm::matmul;
    use t3_collectives::reference::assert_close;
    use t3_sim::config::SystemConfig;

    fn small_gpu(tile: u32) -> GpuConfig {
        let mut gpu = SystemConfig::paper_default().gpu;
        gpu.tile_dim = tile;
        gpu
    }

    fn deterministic(len: usize, seed: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (((i * 37 + seed * 101 + 13) % 29) as f32 - 14.0) / 9.0)
            .collect()
    }

    fn producers(n_dev: usize, m: usize, n: usize, k: usize) -> Vec<FusedProducer> {
        (0..n_dev)
            .map(|d| FusedProducer {
                a: deterministic(m * k, d * 2 + 1),
                b: deterministic(k * n, d * 2 + 2),
            })
            .collect()
    }

    /// Reference: sum over devices of their full GEMM outputs, in tile
    /// order.
    fn reference_sum(gpu: &GpuConfig, shape: GemmShape, prods: &[FusedProducer]) -> Vec<f32> {
        let grid = GemmGrid::new(gpu, shape);
        let (m, n, k) = (shape.m as usize, shape.n as usize, shape.k as usize);
        let mut sum = vec![0.0f32; m * n];
        for p in prods {
            let c = matmul(&p.a, &p.b, m, n, k);
            for (s, v) in sum.iter_mut().zip(&c) {
                *s += v;
            }
        }
        to_tile_order(&grid, &sum)
    }

    #[test]
    fn ring_rs_fusion_matches_gemm_then_reduce() {
        for n_dev in [2usize, 3, 4, 8] {
            let (m, n, k) = (48, 40, 8);
            let shape = GemmShape::new(m as u64, n as u64, k as u64);
            let gpu = small_gpu(16);
            let prods = producers(n_dev, m, n, k);
            let expected = reference_sum(&gpu, shape, &prods);
            let outcome = fused_gemm_ring_rs(&gpu, shape, &prods);
            let ring = Ring::new(n_dev);
            for d in 0..n_dev {
                let chunk = ring.rs_owned_chunk(d);
                let (s, e) = outcome.chunk_ranges[chunk];
                assert_close(outcome.owned_chunk(ring, d), &expected[s..e], 1e-4);
            }
        }
    }

    #[test]
    fn ring_rs_dma_count_is_n_times_n_minus_2() {
        let (m, n, k) = (64, 64, 8);
        let gpu = small_gpu(16);
        for n_dev in [2usize, 4, 6] {
            let outcome = fused_gemm_ring_rs(
                &gpu,
                GemmShape::new(m, n, k),
                &producers(n_dev, m as usize, n as usize, k as usize),
            );
            assert_eq!(outcome.dma_transfers, (n_dev * (n_dev - 2)) as u64);
        }
    }

    #[test]
    fn ring_rs_triggers_cover_tracked_chunks() {
        let (m, n, k) = (64, 64, 8);
        let n_dev = 4;
        let gpu = small_gpu(16);
        let shape = GemmShape::new(m, n, k);
        let outcome = fused_gemm_ring_rs(
            &gpu,
            shape,
            &producers(n_dev, m as usize, n as usize, k as usize),
        );
        let grid = GemmGrid::new(&gpu, shape);
        // Per device: N-1 tracked chunks x WFs per chunk (all tiles are
        // full here, every WF non-empty).
        let wfs_per_chunk = grid.num_wfs() as usize / n_dev;
        let expected = n_dev * (n_dev - 1) * wfs_per_chunk;
        assert_eq!(outcome.triggers_fired, expected as u64);
        assert!(outcome.peak_tracker_entries > 0);
    }

    #[test]
    fn direct_rs_fusion_matches_reference() {
        let (m, n, k) = (48, 32, 8);
        let n_dev = 4;
        let gpu = small_gpu(16);
        let shape = GemmShape::new(m as u64, n as u64, k as u64);
        let prods = producers(n_dev, m, n, k);
        let expected = reference_sum(&gpu, shape, &prods);
        let outcome = fused_gemm_direct_rs(&gpu, shape, &prods);
        for d in 0..n_dev {
            // Direct RS: device d owns chunk d.
            let (s, e) = outcome.chunk_ranges[d];
            assert_close(&outcome.outputs[d].as_slice()[s..e], &expected[s..e], 1e-4);
        }
        // No DMA at all: the GEMM's stores were the collective.
        assert_eq!(outcome.dma_transfers, 0);
    }

    #[test]
    fn all_to_all_fusion_exchanges_chunks() {
        let (m, n, k) = (64, 64, 4);
        let n_dev = 4;
        let gpu = small_gpu(16);
        let shape = GemmShape::new(m as u64, n as u64, k as u64);
        let prods = producers(n_dev, m, n, k);
        let grid = GemmGrid::new(&gpu, shape);
        // Per-device full outputs, tile-ordered.
        let locals: Vec<Vec<f32>> = prods
            .iter()
            .map(|p| to_tile_order(&grid, &matmul(&p.a, &p.b, m, n, k)))
            .collect();
        let outcome = fused_gemm_all_to_all(&gpu, shape, &prods);
        let c = outcome.chunk_ranges[0].1 - outcome.chunk_ranges[0].0;
        for dst in 0..n_dev {
            for src in 0..n_dev {
                // Slot src of dst holds src's chunk dst.
                let got = &outcome.outputs[dst].as_slice()[src * c..(src + 1) * c];
                let (cs, ce) = outcome.chunk_ranges[dst];
                assert_close(got, &locals[src][cs..ce], 1e-4);
            }
        }
    }

    #[test]
    fn split_k_fusion_matches_reference() {
        // Section 7.7: split-K producers make multiple partial updates
        // per element; the Tracker must wait for all of them.
        let (m, n, k) = (48, 40, 12);
        let gpu = small_gpu(16);
        let shape = GemmShape::new(m as u64, n as u64, k as u64);
        for n_dev in [2usize, 4] {
            for split_k in [1u32, 2, 3, 4] {
                let prods = producers(n_dev, m, n, k);
                let expected = reference_sum(&gpu, shape, &prods);
                let outcome = fused_gemm_ring_rs_split_k(&gpu, shape, &prods, split_k);
                let ring = Ring::new(n_dev);
                for d in 0..n_dev {
                    let chunk = ring.rs_owned_chunk(d);
                    let (s, e) = outcome.chunk_ranges[chunk];
                    assert_close(outcome.owned_chunk(ring, d), &expected[s..e], 1e-4);
                }
                assert_eq!(
                    outcome.dma_transfers,
                    (n_dev * n_dev.saturating_sub(2)) as u64,
                    "split_k must not change the DMA schedule"
                );
            }
        }
    }

    #[test]
    fn split_k_trigger_counts_scale_with_updates() {
        // Triggers fire once per WF regardless of split_k; what grows
        // is the number of updates each entry absorbs first.
        let (m, n, k) = (64, 64, 8);
        let gpu = small_gpu(16);
        let shape = GemmShape::new(m, n, k);
        let prods = producers(4, m as usize, n as usize, k as usize);
        let plain = fused_gemm_ring_rs_split_k(&gpu, shape, &prods, 1);
        let split = fused_gemm_ring_rs_split_k(&gpu, shape, &prods, 4);
        assert_eq!(plain.triggers_fired, split.triggers_fired);
    }

    #[test]
    #[should_panic(expected = "split_k must be in 1..=K")]
    fn split_k_larger_than_k_rejected() {
        let gpu = small_gpu(16);
        let shape = GemmShape::new(32, 32, 4);
        let prods = producers(2, 32, 32, 4);
        let _ = fused_gemm_ring_rs_split_k(&gpu, shape, &prods, 5);
    }

    #[test]
    fn ag_fusion_broadcasts_every_shard() {
        // Each device computes only its shard; after the fused AG,
        // chunk c everywhere equals device c's locally-computed shard.
        let (m, n, k) = (48, 40, 8);
        let gpu = small_gpu(16);
        let shape = GemmShape::new(m as u64, n as u64, k as u64);
        for n_dev in [2usize, 3, 4] {
            let prods = producers(n_dev, m, n, k);
            let grid = GemmGrid::new(&gpu, shape);
            let outcome = fused_gemm_ring_ag(&gpu, shape, &prods);
            for c in 0..n_dev {
                let local = to_tile_order(&grid, &matmul(&prods[c].a, &prods[c].b, m, n, k));
                let (s, e) = outcome.chunk_ranges[c];
                for d in 0..n_dev {
                    assert_close(&outcome.outputs[d].as_slice()[s..e], &local[s..e], 1e-4);
                }
            }
            // Each shard makes N-1 hops: N shards x (N-1) DMAs.
            assert_eq!(outcome.dma_transfers, (n_dev * (n_dev - 1)) as u64);
        }
    }

    #[test]
    fn edge_tiles_and_empty_wfs_are_handled() {
        // m not divisible by tile, tile height smaller than 8 WFs on
        // the edge row.
        let (m, n, k) = (37, 21, 5);
        let n_dev = 3;
        let gpu = small_gpu(16);
        let shape = GemmShape::new(m as u64, n as u64, k as u64);
        let prods = producers(n_dev, m, n, k);
        let expected = reference_sum(&gpu, shape, &prods);
        let outcome = fused_gemm_ring_rs(&gpu, shape, &prods);
        let ring = Ring::new(n_dev);
        for d in 0..n_dev {
            let chunk = ring.rs_owned_chunk(d);
            let (s, e) = outcome.chunk_ranges[chunk];
            assert_close(outcome.owned_chunk(ring, d), &expected[s..e], 1e-4);
        }
    }

    #[test]
    fn wf_rows_partition_tile() {
        for h in [1usize, 5, 8, 72, 128] {
            let mut covered = 0;
            for wf in 0..8 {
                let (r0, r1) = wf_rows(h, 8, wf);
                assert_eq!(r0, covered);
                covered = r1;
            }
            assert_eq!(covered, h);
        }
    }

    #[test]
    fn to_tile_order_round_trips_totals() {
        let gpu = small_gpu(16);
        let shape = GemmShape::new(20, 36, 4);
        let grid = GemmGrid::new(&gpu, shape);
        let rm: Vec<f32> = (0..20 * 36).map(|i| i as f32).collect();
        let to = to_tile_order(&grid, &rm);
        let sum_rm: f32 = rm.iter().sum();
        let sum_to: f32 = to.iter().sum();
        assert_eq!(sum_rm, sum_to);
        assert_ne!(rm, to, "layouts must differ for multi-tile grids");
    }
}
