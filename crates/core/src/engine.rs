//! Timing simulation of T3's fused GEMM + ring reduce-scatter.
//!
//! Follows the paper's multi-GPU methodology (Section 5.1.1, Figure
//! 13): in a tensor-parallel node all GPUs execute homogeneously, so
//! one GPU is simulated in full and remote traffic is *mirrored* — the
//! incoming update stream for a chunk arrives with the timing of this
//! GPU's own outgoing transfers for the previous chunk (which
//! implicitly carries the neighbour's compute/communication
//! interference, exactly as the paper argues).
//!
//! Per the fused schedule (Figure 7) for an `N`-GPU ring:
//!
//! * the first chunk's stores leave as fine-grained remote updates on
//!   the link and never touch local DRAM;
//! * steady-state chunks are written locally as uncached near-memory
//!   updates; the [`Tracker`] counts the local stores (at
//!   memory-controller enqueue, Section 4.2.1) and the incoming
//!   mirrored updates (as DRAM services them), and fires the
//!   pre-programmed DMA when every wavefront region of a chunk is
//!   complete;
//! * the DMA reads the partially-reduced chunk once and sends it; its
//!   delivery mirrors the arrival of the *next* chunk's incoming copy;
//! * the last chunk is the one this GPU owns: local + incoming updates
//!   complete it in memory, with no further transfer.
//!
//! All DRAM traffic flows through one [`MemoryController`] under the
//! configured arbitration policy — this is where T3 and T3-MCA differ
//! (Sections 4.5, 6.1.2, 6.1.3).

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::addrmap::{ChunkRoute, OutputConfig};
use crate::tracker::{Tracker, TrackerConfig, WfId};
use t3_gpu::engine::{GemmEngine, GemmEvent};
use t3_gpu::gemm::GemmGrid;
use t3_mem::arbiter::{ArbitrationPolicy, ComputeFirstPolicy, McaPolicy, RoundRobinPolicy};
use t3_mem::controller::{MemoryController, StreamId};
use t3_mem::llc::Llc;
use t3_mem::nmc::ReductionSubstrate;
use t3_net::dma::{DmaCommand, DmaEngine};
use t3_net::ring::Ring;
use t3_sim::config::SystemConfig;
use t3_sim::stats::{TrafficClass, TrafficStats};
use t3_sim::timeseries::TimeSeries;
use t3_sim::{Bytes, Cycle, SimMode};
use t3_trace::{reborrow, Event, Instruments};

/// One-time lookup of the `T3_TRACE` debug-print switch. The cycle
/// loops must never call `std::env::var` (it takes a process-global
/// lock); the flag cannot change mid-run anyway.
fn debug_trace() -> bool {
    static FLAG: OnceLock<bool> = OnceLock::new();
    *FLAG.get_or_init(|| std::env::var("T3_TRACE").is_ok())
}

/// Arbitration policy selection for a fused run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Naive round-robin (plain T3).
    RoundRobin,
    /// Static compute priority (intermediate point, for ablations).
    ComputeFirst,
    /// T3-MCA with the dynamic first-stage intensity probe.
    McaDynamic,
    /// T3-MCA with a fixed occupancy threshold (threshold ablation).
    McaFixed(usize),
}

impl PolicyChoice {
    fn build(self, sys: &SystemConfig) -> Box<dyn ArbitrationPolicy> {
        match self {
            PolicyChoice::RoundRobin => Box::new(RoundRobinPolicy::new()),
            PolicyChoice::ComputeFirst => Box::new(ComputeFirstPolicy::new()),
            PolicyChoice::McaDynamic => Box::new(McaPolicy::new(&sys.mem)),
            PolicyChoice::McaFixed(t) => Box::new(McaPolicy::with_fixed_threshold(t)),
        }
    }
}

/// Options for a fused GEMM-RS timing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusedOptions {
    /// Memory-controller arbitration policy.
    pub policy: PolicyChoice,
    /// Where communication reductions execute.
    pub substrate: ReductionSubstrate,
    /// Staggered WG scheduling across GPUs (Section 4.4). Disabling it
    /// delays each chunk's incoming copy by the un-overlapped ring
    /// depth (ablation; see DESIGN.md).
    pub stagger: bool,
    /// Record a DRAM-traffic time series with this bucket width.
    pub timeseries_bucket: Option<Cycle>,
    /// How the engine loop advances time. Both modes are
    /// byte-identical; [`SimMode::Stepped`] is the reference path kept
    /// for the equivalence tests.
    pub mode: SimMode,
}

impl Default for FusedOptions {
    fn default() -> Self {
        FusedOptions {
            policy: PolicyChoice::RoundRobin,
            substrate: ReductionSubstrate::NearMemory,
            stagger: true,
            timeseries_bucket: None,
            mode: SimMode::default(),
        }
    }
}

/// Minimum of two optional event cycles (`None` = no event).
pub(crate) fn min_event(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Outcome of a fused GEMM-RS timing run.
#[derive(Debug, Clone)]
pub struct FusedRunResult {
    /// End-to-end cycles for the fused GEMM + reduce-scatter.
    pub cycles: Cycle,
    /// Per-GPU DRAM traffic.
    pub stats: TrafficStats,
    /// Optional traffic timeline (Figure 17).
    pub timeseries: Option<TimeSeries>,
    /// DMA chunk transfers performed (`N-2` per GPU for ring-RS).
    pub dma_transfers: u64,
    /// Tracker high-water mark (hardware sizing check).
    pub peak_tracker_entries: usize,
    /// Bytes sent on the outbound link (remote stores + DMA payloads).
    pub link_bytes_sent: Bytes,
}

/// Tag space: link messages tagged `>= TAG_REMOTE` are warm-up remote
/// stores; below that, the tag is the DMA'd chunk's position.
const TAG_REMOTE: u64 = 1 << 32;

#[derive(Debug)]
struct ChunkState {
    wg_bounds: (u64, u64),
    bytes: Bytes,
    route: ChunkRoute,
    triggered_wfs: usize,
    expected_wfs: usize,
    dma_fired: bool,
    incoming_announced: Bytes,
    feed_built: bool,
}

/// Mirror traffic scheduled to enter the comm stream at `at`.
#[derive(Debug, Clone, Copy)]
struct PendingIncoming {
    at: Cycle,
    position: usize,
    bytes: Bytes,
}

/// A wavefront region in the incoming-update attribution FIFO.
#[derive(Debug, Clone, Copy)]
struct FeedEntry {
    position: usize,
    wf: WfId,
    addr: u64,
    region_bytes: Bytes,
    consumed_bytes: Bytes,
}

/// Runs the fused GEMM + ring reduce-scatter on one (mirrored) GPU.
///
/// The all-gather completing the all-reduce is sequential in T3
/// (Section 5.3) and is accounted by the configuration layer.
///
/// # Examples
///
/// ```
/// use t3_core::engine::{run_fused_gemm_rs, FusedOptions};
/// use t3_gpu::gemm::{GemmGrid, GemmShape};
/// use t3_sim::config::SystemConfig;
///
/// let sys = SystemConfig::paper_default(); // 8-GPU ring
/// let grid = GemmGrid::new(&sys.gpu, GemmShape::new(1024, 1024, 256));
/// let run = run_fused_gemm_rs(&sys, grid, &FusedOptions::default());
/// // N-2 steady-state chunks leave via Tracker-triggered DMAs.
/// assert_eq!(run.dma_transfers, 6);
/// ```
///
/// # Panics
///
/// Panics if `opts.substrate` cannot reduce in memory, or if the
/// simulation fails to converge (an internal error).
pub fn run_fused_gemm_rs(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
) -> FusedRunResult {
    run_fused_gemm_rs_instrumented(sys, grid, opts, None)
}

/// [`run_fused_gemm_rs`] with optional structured instrumentation:
/// GEMM stages, chunk sends/receives, DMA trigger fires, link busy
/// intervals and memory-controller queue samples are recorded into
/// `ins` (Tracker table updates too, at [`t3_trace::Detail::Fine`]),
/// and end-of-run metrics (per-class traffic, cycles, DMA/tracker/LLC
/// counters) are snapshotted into its registry. Passing `None` is
/// bit-identical to `run_fused_gemm_rs`.
///
/// # Panics
///
/// As [`run_fused_gemm_rs`].
pub fn run_fused_gemm_rs_instrumented(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
    mut ins: Option<&mut Instruments>,
) -> FusedRunResult {
    assert!(
        opts.substrate.reduces_in_memory(),
        "fused T3 requires an in-memory reduction substrate"
    );
    let n = sys.num_gpus;
    let ring = Ring::new(n);
    let config = OutputConfig::ring_reduce_scatter(ring, 0);
    let elem_bytes = grid.shape().elem_bytes;
    let update_cost = opts.substrate.update_cost_multiplier(&sys.mem);

    // Position p is the p-th chunk this GPU computes. Ring-RS has two
    // mirror-image schedules (send-to-next with descending chunk order,
    // or send-to-prev with ascending); we simulate the ascending one so
    // that the staggered schedule of the simulated GPU coincides with
    // the GEMM's natural WG order — the routes per position (warm-up
    // remote, N-2 DMA steps, owned last) are identical either way.
    let mut chunks: Vec<ChunkState> = (0..n)
        .map(|p| {
            let (w0, w1) = grid.chunk_wg_bounds(n as u64, p as u64);
            let route = config.route(p);
            ChunkState {
                wg_bounds: (w0, w1),
                bytes: grid.wg_range_output_bytes(w0, w1),
                route,
                triggered_wfs: 0,
                expected_wfs: if route.tracked() {
                    count_nonempty_wfs(&grid, w0, w1)
                } else {
                    0
                },
                dma_fired: false,
                incoming_announced: 0,
                feed_built: false,
            }
        })
        .collect();
    let bounds: Vec<(u64, u64)> = chunks.iter().map(|c| c.wg_bounds).collect();

    let mut mc = MemoryController::new(&sys.mem, opts.policy.build(sys));
    let mut llc = Llc::new(&sys.mem);
    let mut gemm = GemmEngine::new(&sys.gpu, grid.clone());
    let mut dma = DmaEngine::new(&sys.link);
    let mut tracker = Tracker::new(TrackerConfig::paper(grid.wf_tile_elems()));
    let mut ts = opts.timeseries_bucket.map(TimeSeries::new);

    let mut pending_incoming: Vec<PendingIncoming> = Vec::new();
    let mut feed: VecDeque<FeedEntry> = VecDeque::new();
    let mut rs_update_seen: Bytes = 0;
    let mut remote_delivered: Bytes = 0;

    // Extra delay applied to incoming announcements when stagger is
    // disabled: the ring pipeline depth that fine-grained overlap can
    // no longer hide (see DESIGN.md).
    let no_stagger_delay: Cycle = if opts.stagger {
        0
    } else {
        let avg_chunk = chunks.iter().map(|c| c.bytes).sum::<Bytes>() / n as u64;
        (n as u64).saturating_sub(2)
            // t3-lint: allow(float-cycles) -- pipeline-depth penalty uses the Link's own ceil rounding; pinned by no-stagger ablation tests
            * ((avg_chunk as f64 / sys.link.bytes_per_cycle()).ceil() as Cycle
                + sys.link.latency_cycles())
    };

    let mut remote_seq: u64 = 0;
    let mut first_stage_done = false;
    let mut gemm_done = false;
    let mut dma_transfers = 0u64;
    let mut now: Cycle = 0;

    mc.reset_occupancy_window();

    loop {
        mc.step_traced(now, ts.as_mut(), reborrow(&mut ins));

        // 1. Attribute newly serviced incoming updates to the tracker.
        let serviced = mc.stats().bytes(TrafficClass::RsUpdate);
        if serviced > rs_update_seen {
            let mut delta = serviced - rs_update_seen;
            rs_update_seen = serviced;
            while delta > 0 {
                let entry = feed.front_mut().expect("serviced more than announced");
                let take = delta.min(entry.region_bytes - entry.consumed_bytes);
                entry.consumed_bytes += take;
                delta -= take;
                if entry.consumed_bytes == entry.region_bytes {
                    let e = *entry;
                    feed.pop_front();
                    let region_elems = e.region_bytes / elem_bytes;
                    let updates = chunks[e.position].route.updates_per_element();
                    if tracker
                        .record_update(e.wf, e.addr, region_elems, region_elems, updates)
                        .is_some()
                    {
                        chunks[e.position].triggered_wfs += 1;
                        if let Some(ins) = reborrow(&mut ins) {
                            if ins.tracer.as_ref().is_some_and(|t| t.fine()) {
                                ins.record(
                                    now,
                                    Event::TrackerUpdate {
                                        wg: e.wf.wg,
                                        wf: e.wf.wf as u64,
                                        addr: e.addr,
                                    },
                                );
                            }
                            ins.add("tracker.wf_completions", 1);
                        }
                    }
                }
            }
        }

        // 2. Release due incoming announcements into the comm stream.
        let mut i = 0;
        while i < pending_incoming.len() {
            if pending_incoming[i].at <= now {
                let p = pending_incoming.swap_remove(i);
                if !chunks[p.position].feed_built {
                    build_feed(&grid, &chunks, &mut feed, p.position, elem_bytes);
                    chunks[p.position].feed_built = true;
                }
                mc.enqueue(StreamId::Comm, TrafficClass::RsUpdate, p.bytes, update_cost);
            } else {
                i += 1;
            }
        }

        // 3. Advance the producer GEMM.
        match gemm.step(now, &mut mc, &mut llc) {
            GemmEvent::Idle => {}
            GemmEvent::Finished => gemm_done = true,
            GemmEvent::StageStoresIssued {
                stage,
                wg_start,
                wg_end,
                bytes,
                started,
                compute_cycles,
            } => {
                if debug_trace() {
                    eprintln!("[{now}] stage stores {wg_start}..{wg_end}");
                }
                if let Some(ins) = reborrow(&mut ins) {
                    ins.record(
                        now,
                        Event::GemmStage {
                            stage,
                            wg_start,
                            wg_end,
                            start: started,
                            end: now,
                            bytes,
                            compute_cycles,
                        },
                    );
                    ins.add("gemm.stages", 1);
                    ins.observe("gemm.stage_cycles", now - started);
                }
                if !first_stage_done {
                    // T3-MCA's first-stage memory-intensity probe
                    // (Section 4.5): the first stage ran before any
                    // communication traffic existed.
                    mc.observe_compute_intensity(mc.avg_occupancy_fraction());
                    first_stage_done = true;
                }
                // Split the stage's WGs across chunk boundaries.
                let mut wg = wg_start;
                while wg < wg_end {
                    let pos = position_of_wg(&bounds, wg);
                    let upper = chunks[pos].wg_bounds.1.min(wg_end);
                    let bytes = grid.wg_range_output_bytes(wg, upper);
                    match chunks[pos].route {
                        ChunkRoute::RemoteUpdate { .. } => {
                            // Warm-up chunk: stores go straight onto the
                            // link; the mirrored incoming copy for the
                            // next chunk arrives at delivery time.
                            dma.send_direct_traced(
                                now,
                                TAG_REMOTE + remote_seq,
                                bytes,
                                reborrow(&mut ins),
                            );
                            remote_seq += 1;
                        }
                        ChunkRoute::LocalOnly { .. } | ChunkRoute::LocalThenDmaUpdate { .. } => {
                            // Uncached NMC update stores on the compute
                            // stream; tracked at MCQ enqueue.
                            mc.enqueue(
                                StreamId::Compute,
                                TrafficClass::GemmWrite,
                                bytes,
                                update_cost,
                            );
                            record_local_updates(
                                &grid,
                                &mut tracker,
                                &mut chunks,
                                pos,
                                wg,
                                upper,
                                elem_bytes,
                            );
                        }
                        _ => unreachable!("ring-RS uses no other routes"),
                    }
                    wg = upper;
                }
            }
        }

        // 4. DMA engine: our deliveries mirror incoming traffic.
        for delivery in dma.step_traced(now, &mut mc, reborrow(&mut ins)) {
            if debug_trace() {
                eprintln!(
                    "[{now}] delivery tag {} bytes {}",
                    delivery.tag, delivery.bytes
                );
            }
            if delivery.tag < TAG_REMOTE {
                // Mirrored: our chunk reaching the neighbour IS the
                // next chunk's incoming copy arriving here.
                if let Some(ins) = reborrow(&mut ins) {
                    ins.record(
                        now,
                        Event::ChunkRecv {
                            chunk: delivery.tag + 1,
                            bytes: delivery.bytes,
                        },
                    );
                    ins.add("chunks.received", 1);
                }
            }
            if delivery.tag >= TAG_REMOTE {
                // A warm-up portion reached the neighbour; announce the
                // proportional mirrored portion of our position-1 chunk.
                remote_delivered += delivery.bytes;
                let src_total = chunks[0].bytes;
                let dst_total = chunks[1].bytes;
                let target =
                    (remote_delivered.saturating_mul(dst_total) / src_total).min(dst_total);
                let incoming = target.saturating_sub(chunks[1].incoming_announced);
                if incoming > 0 {
                    chunks[1].incoming_announced += incoming;
                    pending_incoming.push(PendingIncoming {
                        at: now + no_stagger_delay,
                        position: 1,
                        bytes: incoming,
                    });
                }
            } else {
                // Our chunk at position `tag` was delivered; the
                // mirrored copy for position `tag + 1` arrives now.
                let next = delivery.tag as usize + 1;
                assert!(next < chunks.len(), "owned chunk is never DMA'd");
                let bytes = chunks[next].bytes - chunks[next].incoming_announced;
                if bytes > 0 {
                    chunks[next].incoming_announced += bytes;
                    pending_incoming.push(PendingIncoming {
                        at: now + no_stagger_delay,
                        position: next,
                        bytes,
                    });
                }
            }
        }

        // 5. Fire DMAs for completed steady-state chunks.
        for (pos, chunk) in chunks.iter_mut().enumerate() {
            if chunk.route.uses_dma()
                && !chunk.dma_fired
                && chunk.triggered_wfs == chunk.expected_wfs
            {
                chunk.dma_fired = true;
                dma_transfers += 1;
                if debug_trace() {
                    eprintln!("[{now}] DMA fire pos {pos}");
                }
                if let Some(ins) = reborrow(&mut ins) {
                    ins.record(
                        now,
                        Event::DmaTriggerFire {
                            chunk: pos as u64,
                            bytes: chunk.bytes,
                        },
                    );
                    ins.add("dma.triggers_fired", 1);
                }
                dma.trigger(DmaCommand {
                    id: pos as u64,
                    bytes: chunk.bytes,
                    read_class: TrafficClass::RsRead,
                });
            }
        }

        // Completion: producer done, every tracked chunk complete, all
        // queues and wires drained.
        let chunks_done = chunks
            .iter()
            .all(|c| !c.route.tracked() || c.triggered_wfs == c.expected_wfs);
        if gemm_done
            && chunks_done
            && pending_incoming.is_empty()
            && feed.is_empty()
            && dma.is_idle(now)
            && mc.is_idle()
        {
            break;
        }

        // Fast-forward: with the controller quiescent, nothing can
        // happen before the earliest component event — leap straight to
        // it, replaying the skipped controller bookkeeping. A tracker
        // fire can only follow a controller service or a GEMM store,
        // both of which require an event first, so no fire is skipped.
        now = if opts.mode == SimMode::FastForward && mc.is_idle() {
            let pending_at = pending_incoming.iter().map(|p| p.at.max(now + 1)).min();
            let target = min_event(
                min_event(gemm.next_event(now, &mc), dma.next_event(now, &mc)),
                pending_at,
            );
            match target {
                Some(t) if t > now + 1 => {
                    mc.skip_idle(now + 1, t, reborrow(&mut ins));
                    t
                }
                _ => now + 1,
            }
        } else {
            now + 1
        };
        assert!(now < 4_000_000_000, "fused run failed to converge");
    }

    if let Some(ins) = reborrow(&mut ins) {
        ins.record(
            now,
            Event::LlcSample {
                hits: llc.hits(),
                misses: llc.misses(),
            },
        );
        if let Some(m) = ins.metrics.as_mut() {
            m.set("run.cycles", now);
            m.set("dma.transfers", dma_transfers);
            m.set("tracker.peak_entries", tracker.peak_entries() as u64);
            m.set("mc.stream_switches", mc.stream_switches());
            m.set("llc.hits", llc.hits());
            m.set("llc.misses", llc.misses());
            m.record_traffic(mc.stats());
        }
    }

    FusedRunResult {
        cycles: now,
        stats: mc.stats().clone(),
        timeseries: ts,
        dma_transfers,
        peak_tracker_entries: tracker.peak_entries(),
        link_bytes_sent: dma.bytes_sent(),
    }
}

/// Runs the fused GEMM + *direct* reduce-scatter of Section 7.1 on a
/// fully-connected topology: every non-owned chunk leaves as
/// fine-grained remote updates on a dedicated link while the GEMM
/// stores it, and the owned chunk is completed in memory by the
/// mirrored incoming updates of the `N-1` peers. The collective has
/// **zero** dedicated DRAM accesses — no DMA reads, no staging writes.
///
/// # Panics
///
/// Panics if `opts.substrate` cannot reduce in memory or the
/// simulation fails to converge.
pub fn run_fused_gemm_direct_rs(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
) -> FusedRunResult {
    assert!(
        opts.substrate.reduces_in_memory(),
        "fused T3 requires an in-memory reduction substrate"
    );
    let n = sys.num_gpus;
    let update_cost = opts.substrate.update_cost_multiplier(&sys.mem);
    // Simulated device 0 owns chunk 0; all other chunks are
    // remote-mapped to their owners over dedicated links.
    let config = OutputConfig::direct_reduce_scatter(n, 0);
    let owned_updates = config.route(0).updates_per_element();
    let (w0, w1) = grid.chunk_wg_bounds(n as u64, 0);
    let owned_bytes = grid.wg_range_output_bytes(w0, w1);
    let elem_bytes = grid.shape().elem_bytes;

    let mut mc = MemoryController::new(&sys.mem, opts.policy.build(sys));
    let mut llc = Llc::new(&sys.mem);
    let mut gemm = GemmEngine::new(&sys.gpu, grid.clone());
    // One outbound link per peer on the fully-connected topology; all
    // carry fine-grained remote stores.
    let mut links: Vec<t3_net::link::Link> = (0..n - 1)
        .map(|_| t3_net::link::Link::new(&sys.link))
        .collect();
    let mut tracker = Tracker::new(TrackerConfig::paper(grid.wf_tile_elems()));
    let mut ts = opts.timeseries_bucket.map(TimeSeries::new);

    // Incoming mirror: each peer streams updates for our owned chunk
    // as it computes the corresponding region; by homogeneity, peer p
    // produces our chunk's updates at the same time we produce chunk
    // p's stores. Deliveries (after link latency) enter the comm
    // stream; the tracker's feed consumes them in WF order, N-1 full
    // passes over the owned chunk.
    let mut feed: VecDeque<FeedEntry> = VecDeque::new();
    for _pass in 0..(n - 1) {
        build_direct_feed(&grid, w0, w1, &mut feed, elem_bytes);
    }
    let mut rs_update_seen: Bytes = 0;
    let mut pending_incoming: Vec<(Cycle, Bytes)> = Vec::new();
    // Exact proportional mirroring per peer chunk: bytes sent so far
    // and incoming bytes announced so far (avoids rounding loss).
    let mut sent_per_chunk: Vec<Bytes> = vec![0; n];
    let mut announced_per_chunk: Vec<Bytes> = vec![0; n];
    let mut triggered_wfs = 0usize;
    let expected_wfs = count_nonempty_wfs(&grid, w0, w1);
    let mut first_stage_done = false;
    let mut gemm_done = false;
    let mut now: Cycle = 0;
    mc.reset_occupancy_window();

    loop {
        mc.step(now, ts.as_mut());

        // Attribute serviced incoming updates to the tracker.
        let serviced = mc.stats().bytes(TrafficClass::RsUpdate);
        if serviced > rs_update_seen {
            let mut delta = serviced - rs_update_seen;
            rs_update_seen = serviced;
            while delta > 0 {
                let entry = feed.front_mut().expect("serviced more than announced");
                let take = delta.min(entry.region_bytes - entry.consumed_bytes);
                entry.consumed_bytes += take;
                delta -= take;
                if entry.consumed_bytes == entry.region_bytes {
                    let e = *entry;
                    feed.pop_front();
                    let region_elems = e.region_bytes / elem_bytes;
                    if tracker
                        .record_update(e.wf, e.addr, region_elems, region_elems, owned_updates)
                        .is_some()
                    {
                        triggered_wfs += 1;
                    }
                }
            }
        }
        // Release due incoming announcements.
        let mut i = 0;
        while i < pending_incoming.len() {
            if pending_incoming[i].0 <= now {
                let (_, bytes) = pending_incoming.swap_remove(i);
                mc.enqueue(StreamId::Comm, TrafficClass::RsUpdate, bytes, update_cost);
            } else {
                i += 1;
            }
        }

        match gemm.step(now, &mut mc, &mut llc) {
            GemmEvent::Idle => {}
            GemmEvent::Finished => gemm_done = true,
            GemmEvent::StageStoresIssued {
                wg_start, wg_end, ..
            } => {
                if !first_stage_done {
                    mc.observe_compute_intensity(mc.avg_occupancy_fraction());
                    first_stage_done = true;
                }
                let mut wg = wg_start;
                while wg < wg_end {
                    // Split by chunk: chunk 0 is ours (local NMC
                    // updates); everything else leaves on a link.
                    let chunk = {
                        let mut c = 0;
                        for p in 0..n as u64 {
                            let (a, b) = grid.chunk_wg_bounds(n as u64, p);
                            if wg >= a && wg < b {
                                c = p;
                                break;
                            }
                        }
                        c
                    };
                    let (_, cb_end) = grid.chunk_wg_bounds(n as u64, chunk);
                    let upper = cb_end.min(wg_end);
                    let bytes = grid.wg_range_output_bytes(wg, upper);
                    if chunk == 0 {
                        mc.enqueue(
                            StreamId::Compute,
                            TrafficClass::GemmWrite,
                            bytes,
                            update_cost,
                        );
                        record_direct_local(
                            &grid,
                            &mut tracker,
                            &mut triggered_wfs,
                            wg,
                            upper,
                            elem_bytes,
                            owned_updates,
                        );
                    } else {
                        // Remote stores on the dedicated link to the
                        // chunk's owner (each peer has its own wire).
                        let idx = (chunk as usize - 1) % links.len();
                        let arrival = links[idx].send(now, chunk, bytes);
                        // Mirror: a peer's remote stores for our owned
                        // chunk arrive with the same timing,
                        // proportionally sized to our owned chunk (an
                        // exact cursor, so the full owned chunk is
                        // announced once the peer chunk completes).
                        let (ca, cb) = grid.chunk_wg_bounds(n as u64, chunk);
                        let chunk_total = grid.wg_range_output_bytes(ca, cb);
                        let c = chunk as usize;
                        sent_per_chunk[c] += bytes;
                        let target = if sent_per_chunk[c] >= chunk_total {
                            owned_bytes
                        } else {
                            sent_per_chunk[c] * owned_bytes / chunk_total
                        };
                        let mirrored = target.saturating_sub(announced_per_chunk[c]);
                        if mirrored > 0 {
                            announced_per_chunk[c] = target;
                            pending_incoming.push((arrival, mirrored));
                        }
                    }
                    wg = upper;
                }
            }
        }

        // Drain link deliveries (arrival times were captured at send).
        for l in &mut links {
            let _ = l.deliveries_until(now);
        }
        let links_idle = links.iter().all(|l| l.is_idle(now));
        if gemm_done
            && triggered_wfs == expected_wfs
            && pending_incoming.is_empty()
            && links_idle
            && mc.is_idle()
        {
            break;
        }
        now = if opts.mode == SimMode::FastForward && mc.is_idle() {
            let pending_at = pending_incoming.iter().map(|p| p.0.max(now + 1)).min();
            let link_at = links.iter().filter_map(|l| l.next_event(now)).min();
            match min_event(min_event(gemm.next_event(now, &mc), link_at), pending_at) {
                Some(t) if t > now + 1 => {
                    mc.skip_idle(now + 1, t, None);
                    t
                }
                _ => now + 1,
            }
        } else {
            now + 1
        };
        if debug_trace() && now.is_multiple_of(500_000) {
            eprintln!(
                "[{now}] direct: gemm_done={gemm_done} trig={triggered_wfs}/{expected_wfs} pend={} feed={} mc_idle={} links_idle={}",
                pending_incoming.len(),
                feed.len(),
                mc.is_idle(),
                links.iter().all(|l| l.is_idle(now))
            );
        }
        assert!(now < 4_000_000_000, "direct-RS fusion failed to converge");
    }

    FusedRunResult {
        cycles: now,
        stats: mc.stats().clone(),
        timeseries: ts,
        dma_transfers: 0,
        peak_tracker_entries: tracker.peak_entries(),
        link_bytes_sent: links.iter().map(|l| l.total_sent()).sum(),
    }
}

/// Runs a fused GEMM + all-to-all (Sections 7.1/7.2, expert
/// parallelism): chunk `j` of the output is remote-*stored* to device
/// `j` as the GEMM produces it (no local copy, no reduction), and the
/// mirrored incoming chunks land in this device's slots as plain
/// writes. Like direct-RS, the collective itself performs no dedicated
/// DRAM reads.
///
/// # Panics
///
/// Panics if the simulation fails to converge.
pub fn run_fused_gemm_all_to_all(
    sys: &SystemConfig,
    grid: GemmGrid,
    opts: &FusedOptions,
) -> FusedRunResult {
    let n = sys.num_gpus;
    let (w0, w1) = grid.chunk_wg_bounds(n as u64, 0);
    let own_bytes = grid.wg_range_output_bytes(w0, w1);

    let mut mc = MemoryController::new(&sys.mem, opts.policy.build(sys));
    let mut llc = Llc::new(&sys.mem);
    let mut gemm = GemmEngine::new(&sys.gpu, grid.clone());
    let mut links: Vec<t3_net::link::Link> = (0..n - 1)
        .map(|_| t3_net::link::Link::new(&sys.link))
        .collect();
    let mut ts = opts.timeseries_bucket.map(TimeSeries::new);

    let mut pending_incoming: Vec<(Cycle, Bytes)> = Vec::new();
    let mut sent_per_chunk: Vec<Bytes> = vec![0; n];
    let mut announced_per_chunk: Vec<Bytes> = vec![0; n];
    let mut incoming_enqueued: Bytes = 0;
    let mut first_stage_done = false;
    let mut gemm_done = false;
    let mut now: Cycle = 0;
    mc.reset_occupancy_window();

    loop {
        mc.step(now, ts.as_mut());
        let mut i = 0;
        while i < pending_incoming.len() {
            if pending_incoming[i].0 <= now {
                let (_, bytes) = pending_incoming.swap_remove(i);
                incoming_enqueued += bytes;
                mc.enqueue(StreamId::Comm, TrafficClass::AgWrite, bytes, 1.0);
            } else {
                i += 1;
            }
        }
        match gemm.step(now, &mut mc, &mut llc) {
            GemmEvent::Idle => {}
            GemmEvent::Finished => gemm_done = true,
            GemmEvent::StageStoresIssued {
                wg_start, wg_end, ..
            } => {
                if !first_stage_done {
                    mc.observe_compute_intensity(mc.avg_occupancy_fraction());
                    first_stage_done = true;
                }
                let mut wg = wg_start;
                while wg < wg_end {
                    let mut chunk = 0u64;
                    for p in 0..n as u64 {
                        let (a, b) = grid.chunk_wg_bounds(n as u64, p);
                        if wg >= a && wg < b {
                            chunk = p;
                            break;
                        }
                    }
                    let (ca, cb) = grid.chunk_wg_bounds(n as u64, chunk);
                    let upper = cb.min(wg_end);
                    let bytes = grid.wg_range_output_bytes(wg, upper);
                    if chunk == 0 {
                        // Own slot: stays local (uncached store).
                        mc.enqueue(StreamId::Compute, TrafficClass::GemmWrite, bytes, 1.0);
                    } else {
                        let idx = (chunk as usize - 1) % links.len();
                        let arrival = links[idx].send(now, chunk, bytes);
                        let chunk_total = grid.wg_range_output_bytes(ca, cb);
                        let c = chunk as usize;
                        sent_per_chunk[c] += bytes;
                        let target = if sent_per_chunk[c] >= chunk_total {
                            own_bytes
                        } else {
                            sent_per_chunk[c] * own_bytes / chunk_total
                        };
                        let mirrored = target.saturating_sub(announced_per_chunk[c]);
                        if mirrored > 0 {
                            announced_per_chunk[c] = target;
                            pending_incoming.push((arrival, mirrored));
                        }
                    }
                    wg = upper;
                }
            }
        }
        for l in &mut links {
            let _ = l.deliveries_until(now);
        }
        let links_idle = links.iter().all(|l| l.is_idle(now));
        if gemm_done && pending_incoming.is_empty() && links_idle && mc.is_idle() {
            break;
        }
        now = if opts.mode == SimMode::FastForward && mc.is_idle() {
            let pending_at = pending_incoming.iter().map(|p| p.0.max(now + 1)).min();
            let link_at = links.iter().filter_map(|l| l.next_event(now)).min();
            match min_event(min_event(gemm.next_event(now, &mc), link_at), pending_at) {
                Some(t) if t > now + 1 => {
                    mc.skip_idle(now + 1, t, None);
                    t
                }
                _ => now + 1,
            }
        } else {
            now + 1
        };
        assert!(now < 4_000_000_000, "all-to-all fusion failed to converge");
    }
    let _ = incoming_enqueued;
    FusedRunResult {
        cycles: now,
        stats: mc.stats().clone(),
        timeseries: ts,
        dma_transfers: 0,
        peak_tracker_entries: 0,
        link_bytes_sent: links.iter().map(|l| l.total_sent()).sum(),
    }
}

/// Appends the owned chunk's WF regions to the attribution FIFO (one
/// pass; the direct-RS feed is `N-1` passes).
fn build_direct_feed(
    grid: &GemmGrid,
    w0: u64,
    w1: u64,
    feed: &mut VecDeque<FeedEntry>,
    elem_bytes: u64,
) {
    let wfs = grid.wfs_per_wg();
    for wg in w0..w1 {
        let t = grid.wg_tile(wg);
        let (region_addr, _) = grid.wg_output_region(wg);
        for wf in 0..wfs {
            let (r0, r1) = crate::fused::wf_rows(t.height as usize, wfs, wf);
            let region_bytes = ((r1 - r0) as u64) * t.width * elem_bytes;
            if region_bytes == 0 {
                continue;
            }
            feed.push_back(FeedEntry {
                position: 0,
                wf: WfId { wg, wf },
                addr: region_addr + (r0 as u64) * t.width * elem_bytes,
                region_bytes,
                consumed_bytes: 0,
            });
        }
    }
}

/// Records the owned chunk's local NMC stores at MCQ enqueue.
fn record_direct_local(
    grid: &GemmGrid,
    tracker: &mut Tracker,
    triggered_wfs: &mut usize,
    w0: u64,
    w1: u64,
    elem_bytes: u64,
    updates: u32,
) {
    let wfs = grid.wfs_per_wg();
    for wg in w0..w1 {
        let t = grid.wg_tile(wg);
        let (region_addr, _) = grid.wg_output_region(wg);
        for wf in 0..wfs {
            let (r0, r1) = crate::fused::wf_rows(t.height as usize, wfs, wf);
            let elems = ((r1 - r0) as u64) * t.width;
            if elems == 0 {
                continue;
            }
            let addr = region_addr + (r0 as u64) * t.width * elem_bytes;
            if tracker
                .record_update(WfId { wg, wf }, addr, elems, elems, updates)
                .is_some()
            {
                *triggered_wfs += 1;
            }
        }
    }
}

fn position_of_wg(bounds: &[(u64, u64)], wg: u64) -> usize {
    bounds
        .iter()
        .position(|&(w0, w1)| wg >= w0 && wg < w1)
        .expect("wg outside chunk space")
}

/// Counts WFs with non-empty output regions in a WG range.
fn count_nonempty_wfs(grid: &GemmGrid, w0: u64, w1: u64) -> usize {
    let wfs = grid.wfs_per_wg();
    (w0..w1)
        .map(|wg| {
            let h = grid.wg_tile(wg).height as usize;
            (0..wfs)
                .filter(|&wf| {
                    let (r0, r1) = crate::fused::wf_rows(h, wfs, wf);
                    r1 > r0
                })
                .count()
        })
        .sum()
}

/// Records local NMC-update stores for WGs `[w0, w1)` of the chunk at
/// `pos` in the tracker (one full region per WF, counted when the
/// stores enter the memory-controller queue).
fn record_local_updates(
    grid: &GemmGrid,
    tracker: &mut Tracker,
    chunks: &mut [ChunkState],
    pos: usize,
    w0: u64,
    w1: u64,
    elem_bytes: u64,
) {
    let wfs = grid.wfs_per_wg();
    let updates = chunks[pos].route.updates_per_element();
    for wg in w0..w1 {
        let t = grid.wg_tile(wg);
        let (region_addr, _) = grid.wg_output_region(wg);
        for wf in 0..wfs {
            let (r0, r1) = crate::fused::wf_rows(t.height as usize, wfs, wf);
            let elems = ((r1 - r0) as u64) * t.width;
            if elems == 0 {
                continue;
            }
            let addr = region_addr + (r0 as u64) * t.width * elem_bytes;
            if tracker
                .record_update(WfId { wg, wf }, addr, elems, elems, updates)
                .is_some()
            {
                chunks[pos].triggered_wfs += 1;
            }
        }
    }
}

/// Appends all WF regions of `position`'s chunk to the attribution
/// FIFO, in WG/WF order. Attribution advances only as the memory
/// controller actually services announced bytes, so building the full
/// feed up front is safe.
fn build_feed(
    grid: &GemmGrid,
    chunks: &[ChunkState],
    feed: &mut VecDeque<FeedEntry>,
    position: usize,
    elem_bytes: u64,
) {
    let wfs = grid.wfs_per_wg();
    let (w0, w1) = chunks[position].wg_bounds;
    for wg in w0..w1 {
        let t = grid.wg_tile(wg);
        let (region_addr, _) = grid.wg_output_region(wg);
        for wf in 0..wfs {
            let (r0, r1) = crate::fused::wf_rows(t.height as usize, wfs, wf);
            let region_bytes = ((r1 - r0) as u64) * t.width * elem_bytes;
            if region_bytes == 0 {
                continue;
            }
            feed.push_back(FeedEntry {
                position,
                wf: WfId { wg, wf },
                addr: region_addr + (r0 as u64) * t.width * elem_bytes,
                region_bytes,
                consumed_bytes: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_gpu::collective::{CollectiveKind, RingCollective};
    use t3_gpu::engine::{run_gemm_isolated, WritePolicy};
    use t3_gpu::gemm::GemmShape;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    /// A mid-size sliced GEMM: more stages than chunks, several WGs per
    /// chunk, still fast enough for debug-mode tests.
    fn test_grid(sys: &SystemConfig) -> GemmGrid {
        GemmGrid::new(&sys.gpu, GemmShape::new(4096, 4096, 512))
    }

    fn fused(sys: &SystemConfig, opts: &FusedOptions) -> FusedRunResult {
        run_fused_gemm_rs(sys, test_grid(sys), opts)
    }

    #[test]
    fn fused_run_completes_and_counts_dmas() {
        let s = sys();
        let r = fused(&s, &FusedOptions::default());
        assert_eq!(r.dma_transfers, (s.num_gpus - 2) as u64);
        assert!(r.cycles > 0);
        assert!(r.peak_tracker_entries > 0);
    }

    #[test]
    fn fused_traffic_accounting_matches_schedule() {
        let s = sys();
        let grid = test_grid(&s);
        let out = grid.shape().output_bytes();
        let n = s.num_gpus as u64;
        let r = fused(&s, &FusedOptions::default());
        let chunk = out / n;
        let near = |got: Bytes, want: Bytes, what: &str| {
            let tol = 64 * 1024;
            assert!(
                got + tol > want && got < want + tol,
                "{what}: got {got}, want ~{want}"
            );
        };
        // Local GEMM writes: all chunks except the warm-up one.
        near(
            r.stats.bytes(TrafficClass::GemmWrite),
            out - chunk,
            "GEMM writes",
        );
        // Incoming updates: chunks at positions 1..N.
        near(
            r.stats.bytes(TrafficClass::RsUpdate),
            out - chunk,
            "updates",
        );
        // DMA source reads: the N-2 steady-state chunks.
        near(
            r.stats.bytes(TrafficClass::RsRead),
            out - 2 * chunk,
            "DMA reads",
        );
        // Link carried the warm-up chunk + N-2 DMA chunks.
        near(r.link_bytes_sent, out - chunk, "link bytes");
    }

    #[test]
    fn fused_beats_sequential() {
        let s = sys();
        let grid = test_grid(&s);
        let gemm = run_gemm_isolated(&s, grid.clone(), WritePolicy::CachedLocal);
        let rs = RingCollective::baseline(
            CollectiveKind::ReduceScatter,
            grid.shape().output_bytes(),
            &s,
        )
        .simulate(&s);
        let sequential = gemm.cycles + rs.cycles;
        let r = fused(&s, &FusedOptions::default());
        assert!(
            r.cycles < sequential,
            "fused {} must beat sequential {}",
            r.cycles,
            sequential
        );
    }

    #[test]
    fn fused_cannot_beat_the_gemm_itself() {
        let s = sys();
        let grid = test_grid(&s);
        let gemm = run_gemm_isolated(&s, grid.clone(), WritePolicy::BypassLocal);
        let r = fused(&s, &FusedOptions::default());
        assert!(
            r.cycles as f64 > gemm.cycles as f64 * 0.95,
            "fused {} impossibly fast vs GEMM-only {}",
            r.cycles,
            gemm.cycles
        );
    }

    #[test]
    fn mca_is_at_least_as_good_as_round_robin() {
        let s = sys();
        let rr = fused(
            &s,
            &FusedOptions {
                policy: PolicyChoice::RoundRobin,
                ..FusedOptions::default()
            },
        );
        let mca = fused(
            &s,
            &FusedOptions {
                policy: PolicyChoice::McaDynamic,
                ..FusedOptions::default()
            },
        );
        assert!(
            mca.cycles as f64 <= rr.cycles as f64 * 1.02,
            "MCA {} should not lose to round-robin {}",
            mca.cycles,
            rr.cycles
        );
    }

    #[test]
    fn no_stagger_is_slower() {
        let s = sys();
        let st = fused(&s, &FusedOptions::default());
        let no = fused(
            &s,
            &FusedOptions {
                stagger: false,
                ..FusedOptions::default()
            },
        );
        assert!(
            no.cycles > st.cycles,
            "no-stagger {} must exceed staggered {}",
            no.cycles,
            st.cycles
        );
    }

    #[test]
    fn timeseries_records_overlapped_traffic() {
        let s = sys();
        let r = fused(
            &s,
            &FusedOptions {
                timeseries_bucket: Some(4096),
                ..FusedOptions::default()
            },
        );
        let ts = r.timeseries.expect("requested");
        assert_eq!(
            ts.total(TrafficClass::RsUpdate),
            r.stats.bytes(TrafficClass::RsUpdate)
        );
        // Somewhere, GEMM and RS traffic must share a bucket — that is
        // the whole point of fine-grained overlap.
        let overlapped = ts.rows().any(|(_, b)| {
            b[TrafficClass::GemmRead.index()] > 0 && b[TrafficClass::RsUpdate.index()] > 0
        });
        assert!(overlapped, "no bucket shows overlapped traffic");
    }

    #[test]
    fn atomics_substrate_is_no_faster_than_nmc() {
        let s = sys();
        let nmc = fused(&s, &FusedOptions::default());
        let atomics = fused(
            &s,
            &FusedOptions {
                substrate: ReductionSubstrate::SystemAtomics,
                ..FusedOptions::default()
            },
        );
        assert!(atomics.cycles >= nmc.cycles);
    }

    #[test]
    fn two_gpu_ring_works_without_dma() {
        let mut s = sys();
        s.num_gpus = 2;
        let r = fused(&s, &FusedOptions::default());
        assert_eq!(r.dma_transfers, 0);
        assert!(r.cycles > 0);
    }

    #[test]
    fn direct_rs_fusion_eliminates_collective_memory_traffic() {
        let s = sys();
        let grid = test_grid(&s);
        let r = run_fused_gemm_direct_rs(&s, grid.clone(), &FusedOptions::default());
        // Section 7.1: no DMA source reads, no staging writes — the
        // only RS traffic is the incoming updates for the owned chunk.
        assert_eq!(r.stats.bytes(TrafficClass::RsRead), 0);
        assert_eq!(r.dma_transfers, 0);
        let n = s.num_gpus as u64;
        let chunk = grid.shape().output_bytes() / n;
        let upd = r.stats.bytes(TrafficClass::RsUpdate);
        let want = chunk * (n - 1);
        assert!(
            upd + 65536 > want && upd < want + 65536,
            "incoming updates {upd} vs expected {want}"
        );
        // Local writes: only the owned chunk.
        let w = r.stats.bytes(TrafficClass::GemmWrite);
        assert!(w + 65536 > chunk && w < chunk + 65536, "local writes {w}");
    }

    #[test]
    fn direct_rs_beats_ring_rs_fusion() {
        // With dedicated links and no DMA chain, direct-RS should not
        // lose to the ring schedule.
        let s = sys();
        let grid = test_grid(&s);
        let ring = run_fused_gemm_rs(&s, grid.clone(), &FusedOptions::default());
        let direct = run_fused_gemm_direct_rs(&s, grid, &FusedOptions::default());
        assert!(
            direct.cycles <= ring.cycles,
            "direct {} vs ring {}",
            direct.cycles,
            ring.cycles
        );
    }

    #[test]
    fn all_to_all_fusion_overlaps_exchange() {
        let s = sys();
        let grid = test_grid(&s);
        let fused = run_fused_gemm_all_to_all(&s, grid.clone(), &FusedOptions::default());
        // Sequential: GEMM + an all-to-all exchanging (N-1)/N of the
        // output each way (the exchange is link-bound and pipelined
        // across dedicated links, so one chunk serialisation + writes).
        let gemm = t3_gpu::engine::run_gemm_isolated(
            &s,
            grid.clone(),
            t3_gpu::engine::WritePolicy::BypassLocal,
        );
        let chunk = grid.shape().output_bytes() / s.num_gpus as u64;
        let exchange =
            (chunk as f64 / s.link.bytes_per_cycle()).ceil() as u64 + s.link.latency_cycles();
        assert!(
            fused.cycles < gemm.cycles + exchange * 2,
            "fused {} should hide most of the exchange ({} + {})",
            fused.cycles,
            gemm.cycles,
            exchange
        );
        // Incoming slots: N-1 chunks of plain writes.
        let incoming = fused.stats.bytes(TrafficClass::AgWrite);
        let want = chunk * (s.num_gpus as u64 - 1);
        assert!(incoming + 65536 > want && incoming < want + 65536);
        assert_eq!(fused.stats.bytes(TrafficClass::RsRead), 0);
    }

    #[test]
    #[should_panic(expected = "in-memory reduction substrate")]
    fn cu_substrate_rejected() {
        let s = sys();
        let _ = fused(
            &s,
            &FusedOptions {
                substrate: ReductionSubstrate::ComputeUnits,
                ..FusedOptions::default()
            },
        );
    }
}
