//! T3's track-and-trigger mechanism and fused execution engines.
//!
//! This is the paper's primary contribution (Section 4):
//!
//! * [`tracker`] — the lightweight, programmable hardware Tracker at
//!   the memory controller (Section 4.2.1): 256 entries indexed by the
//!   workgroup id's low bits, set-associative on `(wg_msb, wf_id)`,
//!   counting local *and* remote/DMA updates per wavefront output
//!   region and firing a pre-programmed DMA when the expected update
//!   count is reached.
//! * [`addrmap`] — the producer output address-space configuration
//!   (Section 4.4, Figures 11–12): `remote_map` / `dma_map` calls that
//!   route chunks of the GEMM's output to local memory, a peer's
//!   memory, or a triggered DMA, per collective type and topology.
//! * [`fused`] — the *functional* fused GEMM-collective execution: N
//!   devices compute real tile data, stores flow through the address
//!   map, near-memory updates reduce in place, Trackers count and
//!   trigger — and the result provably equals running the GEMM and the
//!   collective back-to-back.
//! * [`engine`] — the *timing* fused execution on the cycle-stepped
//!   substrate (GEMM engine + memory controller + LLC + DMA + link),
//!   following the paper's single-GPU mirrored-traffic methodology
//!   (Section 5.1.1, Figure 13).
//! * [`agfuse`] — the Section 7.2 extension: overlapping an
//!   all-gather with its *consumer* GEMM via Tracker-fired WG
//!   scheduling events.
//! * [`multigpu`] — an explicit N-GPU simulation (no mirroring) that
//!   validates the single-GPU methodology.
//! * [`configs`] — the evaluated configurations of Section 5.3
//!   (Sequential, T3, T3-MCA, Ideal-GEMM-RS-Overlap, Ideal-RS+NMC) with
//!   a single `run` entry point per sublayer GEMM.
//! * [`study`] — the paper's side studies: CU-split overlap potential
//!   (Figure 6), reduce-scatter validation (Figure 14), and
//!   future-hardware scaling (Figure 20).

pub mod addrmap;
pub mod agfuse;
pub mod configs;
pub mod engine;
pub mod fused;
pub mod multigpu;
pub mod study;
pub mod tracker;
