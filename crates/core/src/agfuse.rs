//! Overlapping an all-gather with its *consumer* GEMM (Section 7.2,
//! "TP with All-gather").
//!
//! Some tensor-parallel layouts all-gather activations *before* a
//! long-running GEMM instead of all-reducing after it. T3 extends to
//! this case by inverting the Tracker's role: it tracks
//! "all-gathered-input → GEMM-WG" and triggers a *WG scheduling
//! event* (instead of a DMA) once the input rows a workgroup consumes
//! have arrived. The paper notes the input→WG mapping is
//! kernel-implementation dependent and needs scheduling hints; the
//! [`AgFuseOptions::arrival_aligned`] flag models exactly that — with
//! hints, WG execution order follows chunk arrival; without, the first
//! stages may wait for the last chunk.
//!
//! As elsewhere, one GPU is simulated and arrivals are mirrored from
//! the ring's homogeneous timing.

use t3_gpu::collective::{CollectiveKind, RingCollective};
use t3_gpu::engine::{route_stage_stores, GemmEngine, GemmEvent, WritePolicy};
use t3_gpu::gemm::GemmGrid;
use t3_mem::arbiter::ComputeFirstPolicy;
use t3_mem::controller::{MemoryController, StreamId};
use t3_mem::llc::Llc;
use t3_sim::config::SystemConfig;
use t3_sim::stats::{TrafficClass, TrafficStats};
use t3_sim::Cycle;

/// Options for the fused AG→GEMM run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgFuseOptions {
    /// Whether WG scheduling is aligned with chunk arrival order
    /// (the "additional programming hints" of Section 7.2). Without
    /// alignment, the stage that executes first needs the chunk that
    /// arrives last.
    pub arrival_aligned: bool,
}

impl Default for AgFuseOptions {
    fn default() -> Self {
        AgFuseOptions {
            arrival_aligned: true,
        }
    }
}

/// Outcome of a fused AG→GEMM run.
#[derive(Debug, Clone)]
pub struct AgFuseResult {
    /// End-to-end cycles (all-gather fully hidden or partially
    /// exposed, plus the GEMM).
    pub cycles: Cycle,
    /// DRAM traffic (incoming AG writes + the GEMM's own traffic).
    pub stats: TrafficStats,
    /// WG-scheduling trigger events fired (one per gated stage).
    pub scheduling_triggers: u64,
}

/// Runs the consumer GEMM with its A operand arriving via ring
/// all-gather, stages gated on input availability.
///
/// # Panics
///
/// Panics if the simulation fails to converge (an internal error).
pub fn run_fused_ag_gemm(sys: &SystemConfig, grid: GemmGrid, opts: &AgFuseOptions) -> AgFuseResult {
    let n = sys.num_gpus as u64;
    let shape = *grid.shape();
    let a_bytes = shape.a_bytes();
    let chunk_bytes = a_bytes / n;
    let link_ser = (chunk_bytes as f64 / sys.link.bytes_per_cycle()).ceil() as Cycle; // t3-lint: allow(float-cycles) -- matches Link::serialization_cycles rounding exactly
    let latency = sys.link.latency_cycles();

    // Chunk j of A covers rows [j*m/n, (j+1)*m/n). Arrival times:
    // the own shard at t=0; received shards pipelined one link
    // serialisation apart.
    let arrival_of_received = |j: u64| -> Cycle {
        debug_assert!(j >= 1);
        j * link_ser + latency
    };
    // Which chunk range a stage needs: every chunk covering its WGs'
    // A rows (a stage can span several input chunks).
    let chunks_of_stage = |stage: u64| -> (u64, u64) {
        let (w_start, w_end) = grid.stage_wgs(stage);
        let first_row = grid.wg_tile(w_start).row * grid.tile_dim();
        let last_tile = grid.wg_tile(w_end - 1);
        let last_row = last_tile.row * grid.tile_dim() + last_tile.height - 1;
        (
            (first_row * n / shape.m).min(n - 1),
            (last_row * n / shape.m).min(n - 1),
        )
    };
    // Availability time of consumption-order chunk j.
    let available_at = |j: u64| -> Cycle {
        if opts.arrival_aligned {
            if j == 0 {
                0
            } else {
                arrival_of_received(j)
            }
        } else {
            // Worst case: consumption order is the reverse of arrival
            // order (own shard consumed last).
            if j == n - 1 {
                0
            } else {
                arrival_of_received(n - 1 - j)
            }
        }
    };

    let mut mc = MemoryController::new(&sys.mem, Box::new(ComputeFirstPolicy::new()));
    let mut llc = Llc::new(&sys.mem);
    let mut gemm = GemmEngine::new(&sys.gpu, grid.clone());
    let mut announced: u64 = 0; // received chunks whose writes are enqueued
    let mut scheduling_triggers = 0u64;
    let mut gemm_done = false;
    let mut now: Cycle = 0;

    loop {
        mc.step(now, None);
        // Mirrored incoming AG writes enter the comm stream on arrival.
        while announced + 1 < n && arrival_of_received(announced + 1) <= now {
            announced += 1;
            mc.enqueue(StreamId::Comm, TrafficClass::AgWrite, chunk_bytes, 1.0);
        }
        // Gate the GEMM: only step it when its current stage's input
        // chunk has arrived (the Tracker's WG-scheduling trigger).
        let stage = gemm.current_stage();
        let can_run = gemm_done || stage >= grid.num_stages() || {
            let (c_lo, c_hi) = chunks_of_stage(stage);
            (c_lo..=c_hi).all(|c| available_at(c) <= now)
        };
        if can_run {
            match gemm.step(now, &mut mc, &mut llc) {
                GemmEvent::Idle => {}
                GemmEvent::Finished => gemm_done = true,
                GemmEvent::StageStoresIssued {
                    wg_start, wg_end, ..
                } => {
                    scheduling_triggers += 1;
                    route_stage_stores(
                        &grid,
                        wg_start,
                        wg_end,
                        WritePolicy::CachedLocal,
                        &mut mc,
                        &mut llc,
                    );
                }
            }
            if gemm_done && mc.pending_bytes(StreamId::Compute) == 0 {
                let flush = llc.flush_dirty();
                if flush > 0 {
                    mc.enqueue(StreamId::Compute, TrafficClass::GemmWrite, flush, 1.0);
                }
            }
        }
        if gemm_done && announced == n - 1 && mc.is_idle() {
            break;
        }
        now += 1;
        assert!(now < 4_000_000_000, "fused AG-GEMM failed to converge");
    }

    AgFuseResult {
        cycles: now,
        stats: mc.stats().clone(),
        scheduling_triggers,
    }
}

/// The sequential baseline: ring all-gather of the A operand, then the
/// GEMM.
pub fn sequential_ag_gemm(sys: &SystemConfig, grid: GemmGrid) -> AgFuseResult {
    let ag = RingCollective::baseline(CollectiveKind::AllGather, grid.shape().a_bytes(), sys)
        .simulate(sys);
    let gemm = t3_gpu::engine::run_gemm_isolated(sys, grid, WritePolicy::CachedLocal);
    let mut stats = ag.stats;
    stats.merge(&gemm.stats);
    AgFuseResult {
        cycles: ag.cycles + gemm.cycles,
        stats,
        scheduling_triggers: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3_gpu::gemm::GemmShape;

    fn sys() -> SystemConfig {
        SystemConfig::paper_default()
    }

    /// A consumer GEMM with a large gathered input: tall-skinny A.
    fn grid_of(sys: &SystemConfig) -> GemmGrid {
        GemmGrid::new(&sys.gpu, GemmShape::new(8192, 1024, 1024))
    }

    #[test]
    fn aligned_fusion_beats_sequential() {
        let s = sys();
        let fused = run_fused_ag_gemm(&s, grid_of(&s), &AgFuseOptions::default());
        let seq = sequential_ag_gemm(&s, grid_of(&s));
        assert!(
            fused.cycles < seq.cycles,
            "fused {} must beat sequential {}",
            fused.cycles,
            seq.cycles
        );
        assert!(fused.scheduling_triggers > 0);
    }

    #[test]
    fn misaligned_scheduling_hurts() {
        let s = sys();
        let aligned = run_fused_ag_gemm(&s, grid_of(&s), &AgFuseOptions::default());
        let misaligned = run_fused_ag_gemm(
            &s,
            grid_of(&s),
            &AgFuseOptions {
                arrival_aligned: false,
            },
        );
        assert!(
            misaligned.cycles >= aligned.cycles,
            "misaligned {} vs aligned {}",
            misaligned.cycles,
            aligned.cycles
        );
    }

    #[test]
    fn fused_cannot_beat_the_gemm_alone() {
        let s = sys();
        let gemm = t3_gpu::engine::run_gemm_isolated(
            &s,
            grid_of(&s),
            t3_gpu::engine::WritePolicy::CachedLocal,
        );
        let fused = run_fused_ag_gemm(&s, grid_of(&s), &AgFuseOptions::default());
        assert!(fused.cycles as f64 >= gemm.cycles as f64 * 0.95);
    }

    #[test]
    fn incoming_traffic_covers_received_shards() {
        let s = sys();
        let grid = grid_of(&s);
        let a = grid.shape().a_bytes();
        let n = s.num_gpus as u64;
        let fused = run_fused_ag_gemm(&s, grid, &AgFuseOptions::default());
        let incoming = fused.stats.bytes(TrafficClass::AgWrite);
        let expected = a / n * (n - 1);
        assert_eq!(incoming, expected);
    }
}
