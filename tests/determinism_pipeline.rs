//! Double-run determinism: the dynamic counterpart of the `t3-lint`
//! static pass.
//!
//! The static rules forbid the *sources* of nondeterminism (wall
//! clock, hash order, float-into-counter truncation); this test
//! checks the *consequence* end-to-end: running the same instrumented
//! figures workload twice in one process must produce byte-identical
//! exported artifacts — cycle counts, the Chrome trace JSON, and the
//! metrics registry in both JSON and CSV form. Any per-process seed,
//! leftover global state, or order-sensitive accumulation shows up
//! here as a diff.
//!
//! The `t3-runtime` worker pool adds two more consequences to hold:
//! merged figure output must not depend on the pool width, and a
//! result served from the content-addressed cache must be
//! byte-identical to the run that populated it.

use t3_bench::experiments::{self, ExperimentScale};
use t3_bench::jobs;
use t3_runtime::{CacheConfig, RunOptions, RunSummary};
use t3_sim::SimMode;
use t3_trace::chrome::chrome_trace_json;

/// One traced run's complete exported byte set.
fn tnlg_artifacts_in_mode(mode: SimMode) -> (u64, String, String, String) {
    let (ins, run, clock_ghz) =
        experiments::traced_tnlg_sublayer_in_mode(ExperimentScale::FAST, mode);
    let tracer = ins
        .tracer
        .as_ref()
        .expect("full instruments carry a tracer");
    let metrics = ins
        .metrics
        .as_ref()
        .expect("full instruments carry metrics");
    (
        run.cycles,
        chrome_trace_json(tracer.records(), clock_ghz),
        metrics.to_json(),
        metrics.to_csv(),
    )
}

fn tnlg_artifacts() -> (u64, String, String, String) {
    tnlg_artifacts_in_mode(SimMode::default())
}

fn multinode_artifacts_in_mode(topology: &str, mode: SimMode) -> (u64, String, String) {
    let (ins, run, clock_ghz) =
        experiments::traced_multinode_in_mode(ExperimentScale::FAST, topology, mode);
    let tracer = ins
        .tracer
        .as_ref()
        .expect("full instruments carry a tracer");
    let metrics = ins
        .metrics
        .as_ref()
        .expect("full instruments carry metrics");
    (
        run.cycles,
        chrome_trace_json(tracer.records(), clock_ghz),
        metrics.to_json(),
    )
}

fn multinode_artifacts(topology: &str) -> (u64, String, String) {
    multinode_artifacts_in_mode(topology, SimMode::default())
}

#[test]
fn tnlg_trace_and_metrics_are_bit_identical_across_runs() {
    let (cycles_a, trace_a, json_a, csv_a) = tnlg_artifacts();
    let (cycles_b, trace_b, json_b, csv_b) = tnlg_artifacts();
    assert_eq!(cycles_a, cycles_b, "cycle count drifted between runs");
    assert_eq!(trace_a, trace_b, "Chrome trace bytes drifted between runs");
    assert_eq!(json_a, json_b, "metrics JSON drifted between runs");
    assert_eq!(csv_a, csv_b, "metrics CSV drifted between runs");
    assert!(!trace_a.is_empty() && !json_a.is_empty() && !csv_a.is_empty());
}

#[test]
fn multinode_trace_and_metrics_are_bit_identical_across_runs() {
    let (cycles_a, trace_a, json_a) = multinode_artifacts("switch");
    let (cycles_b, trace_b, json_b) = multinode_artifacts("switch");
    assert_eq!(
        cycles_a, cycles_b,
        "multinode cycle count drifted between runs"
    );
    assert_eq!(
        trace_a, trace_b,
        "multinode Chrome trace drifted between runs"
    );
    assert_eq!(
        json_a, json_b,
        "multinode metrics JSON drifted between runs"
    );
}

/// One traced serving run's complete exported byte set: the Chrome
/// trace plus the canonical request log.
fn serving_artifacts_in_mode(mode: SimMode) -> (u64, String, String) {
    let (ins, row, clock_ghz) =
        t3_serve::study::traced_serving_in_mode(ExperimentScale::FAST.token_divisor, mode);
    let tracer = ins
        .tracer
        .as_ref()
        .expect("full instruments carry a tracer");
    (
        row.run.makespan,
        chrome_trace_json(tracer.records(), clock_ghz),
        t3_serve::request_log(&row.run.outcomes),
    )
}

fn serving_artifacts() -> (u64, String, String) {
    serving_artifacts_in_mode(SimMode::default())
}

// ---------------------------------------------------------------------
// Stepped vs. fast-forward: the event-driven engine must replay every
// skipped cycle's side effects exactly, so the two time-advancement
// modes export byte-identical artifacts on every traced workload.
// ---------------------------------------------------------------------

#[test]
fn tnlg_fast_forward_artifacts_are_byte_identical_to_stepped() {
    let stepped = tnlg_artifacts_in_mode(SimMode::Stepped);
    let fast = tnlg_artifacts_in_mode(SimMode::FastForward);
    assert_eq!(stepped.0, fast.0, "tnlg cycle count diverged across modes");
    assert_eq!(stepped.1, fast.1, "tnlg Chrome trace diverged across modes");
    assert_eq!(stepped.2, fast.2, "tnlg metrics JSON diverged across modes");
    assert_eq!(stepped.3, fast.3, "tnlg metrics CSV diverged across modes");
}

#[test]
fn multinode_fast_forward_artifacts_are_byte_identical_to_stepped() {
    for topology in ["ring", "switch"] {
        let stepped = multinode_artifacts_in_mode(topology, SimMode::Stepped);
        let fast = multinode_artifacts_in_mode(topology, SimMode::FastForward);
        assert_eq!(stepped.0, fast.0, "{topology}: cycle count diverged");
        assert_eq!(stepped.1, fast.1, "{topology}: Chrome trace diverged");
        assert_eq!(stepped.2, fast.2, "{topology}: metrics JSON diverged");
    }
}

#[test]
fn serving_fast_forward_artifacts_are_byte_identical_to_stepped() {
    let stepped = serving_artifacts_in_mode(SimMode::Stepped);
    let fast = serving_artifacts_in_mode(SimMode::FastForward);
    assert_eq!(stepped.0, fast.0, "serving makespan diverged across modes");
    assert_eq!(
        stepped.1, fast.1,
        "serving Chrome trace diverged across modes"
    );
    assert_eq!(
        stepped.2, fast.2,
        "serving request log diverged across modes"
    );
}

#[test]
fn sharded_engine_matches_sequential_at_every_width() {
    use t3_core::engine::FusedOptions;
    use t3_core::multigpu::{run_multi_gpu_fused_rs_on, run_multi_gpu_fused_rs_sharded};

    let sys = t3_sim::config::SystemConfig::paper_default().with_num_gpus(16);
    let topo = t3_topo::Topology::ring(16, &sys.link);
    let grid = t3_gpu::gemm::GemmGrid::new(&sys.gpu, t3_gpu::gemm::GemmShape::new(256, 2048, 512));
    for mode in [SimMode::Stepped, SimMode::FastForward] {
        let opts = FusedOptions {
            mode,
            ..FusedOptions::default()
        };
        let seq = run_multi_gpu_fused_rs_on(&sys, grid.clone(), &opts, &topo, None);
        for threads in [2, 16] {
            let sharded = run_multi_gpu_fused_rs_sharded(&sys, grid.clone(), &opts, &topo, threads);
            assert_eq!(
                format!("{seq:?}"),
                format!("{sharded:?}"),
                "sharded engine diverged at {threads} threads ({} mode)",
                mode.label()
            );
        }
    }
}

#[test]
fn serving_trace_and_request_log_are_bit_identical_across_runs() {
    let (makespan_a, trace_a, log_a) = serving_artifacts();
    let (makespan_b, trace_b, log_b) = serving_artifacts();
    assert_eq!(makespan_a, makespan_b, "serving makespan drifted");
    assert_eq!(trace_a, trace_b, "serving Chrome trace drifted");
    assert_eq!(log_a, log_b, "serving request log drifted");
    assert!(!log_a.is_empty(), "request log must not be empty");
}

#[test]
fn serving_trace_round_trips_to_the_same_request_log() {
    // A serving trace file alone must re-derive the exact request
    // outcomes the engine produced: engine → chrome JSON → t3-prof
    // outcomes is lossless.
    let (_, trace, log) = serving_artifacts();
    let records = t3_prof::parse_chrome_trace(&trace).expect("serving trace parses");
    let outcomes = t3_prof::request_outcomes(&records);
    assert_eq!(t3_serve::request_log(&outcomes), log);
    let stats = t3_prof::iteration_stats(&records);
    assert!(stats.prefill_iterations > 0 && stats.decode_iterations > 0);
}

/// Runs the given figure targets through the runtime scheduler.
fn figures_run(targets: &[&str], workers: usize, cache: Option<CacheConfig>) -> RunSummary {
    let targets: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
    let graph =
        jobs::figure_job_graph(&targets, ExperimentScale::FAST, None).expect("known targets");
    t3_runtime::run(graph, &RunOptions { workers, cache })
}

/// Runs the smoke-target job graph through the runtime scheduler.
fn smoke_run(workers: usize, cache: Option<CacheConfig>) -> RunSummary {
    figures_run(jobs::SMOKE_TARGETS, workers, cache)
}

#[test]
fn serving_report_is_byte_identical_at_any_width() {
    // The ISSUE's acceptance pin: the full serving report — both
    // serving tables — must be byte-identical across runs and across
    // worker-pool widths.
    let narrow = figures_run(&["serving", "serving-fused"], 1, None);
    let wide = figures_run(&["serving", "serving-fused"], 4, None);
    assert!(narrow.ok() && wide.ok(), "serving jobs must succeed");
    assert_eq!(
        narrow.merged_stdout(),
        wide.merged_stdout(),
        "serving report must not depend on the pool width"
    );
    assert_eq!(narrow.total_sim_cycles(), wide.total_sim_cycles());
    let text = narrow.merged_stdout();
    assert!(text.contains("t3-fused") && text.contains("baseline"));
}

#[test]
fn merged_output_is_independent_of_worker_count() {
    let narrow = smoke_run(1, None);
    let wide = smoke_run(4, None);
    assert!(narrow.ok() && wide.ok(), "smoke jobs must all succeed");
    assert_eq!(
        narrow.merged_stdout(),
        wide.merged_stdout(),
        "--jobs 1 and --jobs 4 must merge byte-identical output"
    );
    assert_eq!(
        narrow.total_sim_cycles(),
        wide.total_sim_cycles(),
        "simulated cycle tally must not depend on the pool width"
    );
    assert!(!narrow.merged_stdout().is_empty());
}

/// Expands the checked-in example spec pair and runs it through the
/// runtime scheduler, exactly as `figures sweep w.t3w s.t3s` does.
fn sweep_run(workers: usize, cache: Option<CacheConfig>) -> RunSummary {
    let plan = jobs::load_sweep_plan("examples/specs/tnlg_tp.t3w", "examples/specs/ring.t3s")
        .expect("example specs expand");
    let graph = jobs::figure_job_graph_with_sweep(
        &["sweep".to_string()],
        ExperimentScale::FAST,
        None,
        Some(&plan),
    )
    .expect("sweep graph builds");
    t3_runtime::run(graph, &RunOptions { workers, cache })
}

#[test]
fn spec_sweep_is_byte_identical_across_runs_and_widths() {
    // The ISSUE's acceptance pin for the spec frontend: the expanded
    // sweep's merged output must not depend on the run or the pool
    // width, because point rows are emitted in spec enumeration order.
    let first = sweep_run(1, None);
    let again = sweep_run(1, None);
    let wide = sweep_run(4, None);
    assert!(first.ok() && again.ok() && wide.ok(), "sweep jobs succeed");
    assert_eq!(
        first.merged_stdout(),
        again.merged_stdout(),
        "sweep output drifted between runs"
    );
    assert_eq!(
        first.merged_stdout(),
        wide.merged_stdout(),
        "sweep output must not depend on the pool width"
    );
    assert_eq!(first.total_sim_cycles(), wide.total_sim_cycles());
    let text = first.merged_stdout();
    assert!(text.contains("3D-parallelism sweep"), "header must render");
    assert!(text.contains("t3mca"), "fused rows must render");
}

#[test]
fn spec_sweep_cache_round_trip_replays_the_exact_bytes() {
    let dir = format!("target/t3-cache-sweep-test-{}", std::process::id());
    let _ = std::fs::remove_dir_all(&dir);
    let cold = sweep_run(2, Some(CacheConfig::at(&dir)));
    let warm = sweep_run(2, Some(CacheConfig::at(&dir)));
    let result = std::panic::catch_unwind(|| {
        assert!(cold.ok() && warm.ok(), "sweep jobs must all succeed");
        assert_eq!(cold.cache_hits, 0, "first run must miss everything");
        assert_eq!(
            warm.cache_misses, 0,
            "spec content unchanged, so the rerun must hit on every job"
        );
        assert_eq!(warm.cache_hits, cold.cache_misses);
        assert_eq!(
            cold.merged_stdout(),
            warm.merged_stdout(),
            "cache-warm sweep must replay the exact bytes of the live run"
        );
        assert_eq!(cold.total_sim_cycles(), warm.total_sim_cycles());
    });
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}

#[test]
fn cache_round_trip_preserves_bytes_and_cycles() {
    // A per-process scratch cache under target/ so concurrent test
    // binaries and stale state cannot interfere.
    let dir = format!("target/t3-cache-test-{}", std::process::id());
    let _ = std::fs::remove_dir_all(&dir);
    let cold = smoke_run(2, Some(CacheConfig::at(&dir)));
    let warm = smoke_run(2, Some(CacheConfig::at(&dir)));
    let result = std::panic::catch_unwind(|| {
        assert!(cold.ok() && warm.ok(), "smoke jobs must all succeed");
        assert_eq!(cold.cache_hits, 0, "first run must miss everything");
        assert_eq!(cold.cache_misses as usize, jobs::SMOKE_TARGETS.len());
        assert_eq!(
            warm.cache_hits as usize,
            jobs::SMOKE_TARGETS.len(),
            "second run must be served entirely from cache"
        );
        assert_eq!(
            cold.merged_stdout(),
            warm.merged_stdout(),
            "cached results must replay the exact bytes of the live run"
        );
        assert_eq!(
            cold.total_sim_cycles(),
            warm.total_sim_cycles(),
            "simulated cycles must survive the cache round-trip"
        );
    });
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}
