//! Double-run determinism: the dynamic counterpart of the `t3-lint`
//! static pass.
//!
//! The static rules forbid the *sources* of nondeterminism (wall
//! clock, hash order, float-into-counter truncation); this test
//! checks the *consequence* end-to-end: running the same instrumented
//! figures workload twice in one process must produce byte-identical
//! exported artifacts — cycle counts, the Chrome trace JSON, and the
//! metrics registry in both JSON and CSV form. Any per-process seed,
//! leftover global state, or order-sensitive accumulation shows up
//! here as a diff.

use t3_bench::experiments::{self, ExperimentScale};
use t3_trace::chrome::chrome_trace_json;

/// One traced run's complete exported byte set.
fn tnlg_artifacts() -> (u64, String, String, String) {
    let (ins, run, clock_ghz) = experiments::traced_tnlg_sublayer(ExperimentScale::FAST);
    let tracer = ins
        .tracer
        .as_ref()
        .expect("full instruments carry a tracer");
    let metrics = ins
        .metrics
        .as_ref()
        .expect("full instruments carry metrics");
    (
        run.cycles,
        chrome_trace_json(tracer.records(), clock_ghz),
        metrics.to_json(),
        metrics.to_csv(),
    )
}

fn multinode_artifacts(topology: &str) -> (u64, String, String) {
    let (ins, run, clock_ghz) = experiments::traced_multinode(ExperimentScale::FAST, topology);
    let tracer = ins
        .tracer
        .as_ref()
        .expect("full instruments carry a tracer");
    let metrics = ins
        .metrics
        .as_ref()
        .expect("full instruments carry metrics");
    (
        run.cycles,
        chrome_trace_json(tracer.records(), clock_ghz),
        metrics.to_json(),
    )
}

#[test]
fn tnlg_trace_and_metrics_are_bit_identical_across_runs() {
    let (cycles_a, trace_a, json_a, csv_a) = tnlg_artifacts();
    let (cycles_b, trace_b, json_b, csv_b) = tnlg_artifacts();
    assert_eq!(cycles_a, cycles_b, "cycle count drifted between runs");
    assert_eq!(trace_a, trace_b, "Chrome trace bytes drifted between runs");
    assert_eq!(json_a, json_b, "metrics JSON drifted between runs");
    assert_eq!(csv_a, csv_b, "metrics CSV drifted between runs");
    assert!(!trace_a.is_empty() && !json_a.is_empty() && !csv_a.is_empty());
}

#[test]
fn multinode_trace_and_metrics_are_bit_identical_across_runs() {
    let (cycles_a, trace_a, json_a) = multinode_artifacts("switch");
    let (cycles_b, trace_b, json_b) = multinode_artifacts("switch");
    assert_eq!(
        cycles_a, cycles_b,
        "multinode cycle count drifted between runs"
    );
    assert_eq!(
        trace_a, trace_b,
        "multinode Chrome trace drifted between runs"
    );
    assert_eq!(
        json_a, json_b,
        "multinode metrics JSON drifted between runs"
    );
}
