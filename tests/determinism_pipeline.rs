//! Double-run determinism: the dynamic counterpart of the `t3-lint`
//! static pass.
//!
//! The static rules forbid the *sources* of nondeterminism (wall
//! clock, hash order, float-into-counter truncation); this test
//! checks the *consequence* end-to-end: running the same instrumented
//! figures workload twice in one process must produce byte-identical
//! exported artifacts — cycle counts, the Chrome trace JSON, and the
//! metrics registry in both JSON and CSV form. Any per-process seed,
//! leftover global state, or order-sensitive accumulation shows up
//! here as a diff.
//!
//! The `t3-runtime` worker pool adds two more consequences to hold:
//! merged figure output must not depend on the pool width, and a
//! result served from the content-addressed cache must be
//! byte-identical to the run that populated it.

use t3_bench::experiments::{self, ExperimentScale};
use t3_bench::jobs;
use t3_runtime::{CacheConfig, RunOptions, RunSummary};
use t3_trace::chrome::chrome_trace_json;

/// One traced run's complete exported byte set.
fn tnlg_artifacts() -> (u64, String, String, String) {
    let (ins, run, clock_ghz) = experiments::traced_tnlg_sublayer(ExperimentScale::FAST);
    let tracer = ins
        .tracer
        .as_ref()
        .expect("full instruments carry a tracer");
    let metrics = ins
        .metrics
        .as_ref()
        .expect("full instruments carry metrics");
    (
        run.cycles,
        chrome_trace_json(tracer.records(), clock_ghz),
        metrics.to_json(),
        metrics.to_csv(),
    )
}

fn multinode_artifacts(topology: &str) -> (u64, String, String) {
    let (ins, run, clock_ghz) = experiments::traced_multinode(ExperimentScale::FAST, topology);
    let tracer = ins
        .tracer
        .as_ref()
        .expect("full instruments carry a tracer");
    let metrics = ins
        .metrics
        .as_ref()
        .expect("full instruments carry metrics");
    (
        run.cycles,
        chrome_trace_json(tracer.records(), clock_ghz),
        metrics.to_json(),
    )
}

#[test]
fn tnlg_trace_and_metrics_are_bit_identical_across_runs() {
    let (cycles_a, trace_a, json_a, csv_a) = tnlg_artifacts();
    let (cycles_b, trace_b, json_b, csv_b) = tnlg_artifacts();
    assert_eq!(cycles_a, cycles_b, "cycle count drifted between runs");
    assert_eq!(trace_a, trace_b, "Chrome trace bytes drifted between runs");
    assert_eq!(json_a, json_b, "metrics JSON drifted between runs");
    assert_eq!(csv_a, csv_b, "metrics CSV drifted between runs");
    assert!(!trace_a.is_empty() && !json_a.is_empty() && !csv_a.is_empty());
}

#[test]
fn multinode_trace_and_metrics_are_bit_identical_across_runs() {
    let (cycles_a, trace_a, json_a) = multinode_artifacts("switch");
    let (cycles_b, trace_b, json_b) = multinode_artifacts("switch");
    assert_eq!(
        cycles_a, cycles_b,
        "multinode cycle count drifted between runs"
    );
    assert_eq!(
        trace_a, trace_b,
        "multinode Chrome trace drifted between runs"
    );
    assert_eq!(
        json_a, json_b,
        "multinode metrics JSON drifted between runs"
    );
}

/// Runs the smoke-target job graph through the runtime scheduler.
fn smoke_run(workers: usize, cache: Option<CacheConfig>) -> RunSummary {
    let targets: Vec<String> = jobs::SMOKE_TARGETS.iter().map(|t| t.to_string()).collect();
    let graph =
        jobs::figure_job_graph(&targets, ExperimentScale::FAST, None).expect("known targets");
    t3_runtime::run(graph, &RunOptions { workers, cache })
}

#[test]
fn merged_output_is_independent_of_worker_count() {
    let narrow = smoke_run(1, None);
    let wide = smoke_run(4, None);
    assert!(narrow.ok() && wide.ok(), "smoke jobs must all succeed");
    assert_eq!(
        narrow.merged_stdout(),
        wide.merged_stdout(),
        "--jobs 1 and --jobs 4 must merge byte-identical output"
    );
    assert_eq!(
        narrow.total_sim_cycles(),
        wide.total_sim_cycles(),
        "simulated cycle tally must not depend on the pool width"
    );
    assert!(!narrow.merged_stdout().is_empty());
}

#[test]
fn cache_round_trip_preserves_bytes_and_cycles() {
    // A per-process scratch cache under target/ so concurrent test
    // binaries and stale state cannot interfere.
    let dir = format!("target/t3-cache-test-{}", std::process::id());
    let _ = std::fs::remove_dir_all(&dir);
    let cold = smoke_run(2, Some(CacheConfig::at(&dir)));
    let warm = smoke_run(2, Some(CacheConfig::at(&dir)));
    let result = std::panic::catch_unwind(|| {
        assert!(cold.ok() && warm.ok(), "smoke jobs must all succeed");
        assert_eq!(cold.cache_hits, 0, "first run must miss everything");
        assert_eq!(cold.cache_misses as usize, jobs::SMOKE_TARGETS.len());
        assert_eq!(
            warm.cache_hits as usize,
            jobs::SMOKE_TARGETS.len(),
            "second run must be served entirely from cache"
        );
        assert_eq!(
            cold.merged_stdout(),
            warm.merged_stdout(),
            "cached results must replay the exact bytes of the live run"
        );
        assert_eq!(
            cold.total_sim_cycles(),
            warm.total_sim_cycles(),
            "simulated cycles must survive the cache round-trip"
        );
    });
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
}
