//! The paper's headline numbers, at reduced (1/8-token) scale so the
//! whole suite stays fast. Bands are deliberately loose: the absolute
//! substrate differs from the authors' testbed, but who wins, by
//! roughly what factor, and in which direction must hold.

use t3::core::configs::Configuration;
use t3::models::e2e::{layer_time, E2eParams, Phase};
use t3::models::zoo;
use t3::models::Sublayer;
use t3::sim::config::SystemConfig;
use t3::sim::geomean;
use t3::sim::stats::TrafficClass;
use t3_bench::experiments::{
    main_study_models, run_sublayer_matrix, ExperimentScale, SublayerCase,
};

fn matrix() -> Vec<SublayerCase> {
    run_sublayer_matrix(&main_study_models(), ExperimentScale::FAST)
}

#[test]
fn sublayer_speedup_bands_figure_16() {
    let cases = matrix();
    let mca: Vec<f64> = cases
        .iter()
        .map(|c| c.speedup(Configuration::T3Mca))
        .collect();
    let t3: Vec<f64> = cases.iter().map(|c| c.speedup(Configuration::T3)).collect();
    let g_mca = geomean(&mca);
    let g_t3 = geomean(&t3);
    // Paper: T3 20% geomean (max 39%); T3-MCA 30% geomean (max 47%).
    assert!(
        g_mca > 1.10 && g_mca < 1.45,
        "T3-MCA geomean {g_mca:.3} out of band"
    );
    assert!(
        g_t3 > 1.05 && g_t3 < 1.40,
        "T3 geomean {g_t3:.3} out of band"
    );
    assert!(
        g_mca >= g_t3 * 0.99,
        "MCA geomean {g_mca:.3} must not trail T3 {g_t3:.3}"
    );
    let max_mca = mca.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max_mca > 1.25, "max T3-MCA speedup {max_mca:.3} too small");
    // Every sublayer must improve.
    for (c, s) in cases.iter().zip(&mca) {
        assert!(
            *s > 1.0,
            "{} TP{} {:?} regressed",
            c.model,
            c.tp,
            c.sublayer
        );
    }
}

#[test]
fn data_movement_bands_figure_18() {
    let cases = matrix();
    let mut reductions = Vec::new();
    let mut rs_read_ratios = Vec::new();
    for c in &cases {
        let seq = c.outcome(Configuration::Sequential);
        let mca = c.outcome(Configuration::T3Mca);
        reductions.push(1.0 - mca.stats.total() as f64 / seq.stats.total() as f64);
        rs_read_ratios.push(
            seq.stats.bytes(TrafficClass::RsRead) as f64
                / mca.stats.bytes(TrafficClass::RsRead) as f64,
        );
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max = reductions.iter().cloned().fold(f64::MIN, f64::max);
    // Paper: 22% average, 36% max.
    assert!(mean > 0.10 && mean < 0.40, "mean reduction {mean:.3}");
    assert!(max > 0.18 && max < 0.50, "max reduction {max:.3}");
    // Paper: RS reads shrink 2.4x geomean (2.5x TP=8, 2.2x TP=16).
    let g = geomean(&rs_read_ratios);
    assert!(g > 1.9 && g < 3.0, "RS read ratio {g:.2}");
}

#[test]
fn ideal_overlap_band_figure_16() {
    let cases = matrix();
    let ideal: Vec<f64> = cases
        .iter()
        .map(|c| c.speedup(Configuration::IdealOverlap))
        .collect();
    let g = geomean(&ideal);
    // Paper: 35% geomean, 50% max.
    assert!(g > 1.15 && g < 1.55, "ideal geomean {g:.3}");
    let max = ideal.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max < 1.70, "ideal max {max:.3} implausible");
}

#[test]
fn end_to_end_bands_figure_19() {
    // T-NLG TP=16, the paper's strongest end-to-end case.
    let model = zoo::t_nlg();
    let tp = 16u64;
    let sys = SystemConfig::paper_default().with_num_gpus(tp as usize);
    let cases = run_sublayer_matrix(&[(model.clone(), tp)], ExperimentScale::FAST);
    let speedup_of = |sub: Sublayer| {
        cases
            .iter()
            .find(|c| c.sublayer == sub)
            .map(|c| c.speedup(Configuration::T3Mca))
            .expect("present")
    };
    let params = E2eParams::default();
    for (phase, lo, hi) in [
        (Phase::Training, 1.03, 1.20),
        (Phase::InferencePrompt, 1.04, 1.25),
    ] {
        let lt = layer_time(&sys, &model, tp, phase, &params);
        let s = lt.speedup_with(speedup_of);
        assert!(
            s > lo && s < hi,
            "{phase:?} end-to-end speedup {s:.3} out of [{lo}, {hi}]"
        );
    }
}

#[test]
fn nmc_headroom_band_figure_16() {
    // Ideal-RS+NMC adds a little on top of ideal overlap (paper: up to
    // ~4% extra where RS is exposed).
    let cases = matrix();
    for c in &cases {
        let a = c.speedup(Configuration::IdealOverlap);
        let b = c.speedup(Configuration::IdealRsNmc);
        assert!(b + 1e-9 >= a, "NMC cannot hurt the ideal");
        assert!(b / a < 1.12, "NMC ideal bonus {:.3} implausible", b / a);
    }
}
