//! Cross-crate integration tests for the Section-7 extension engines:
//! direct-RS, all-to-all, AG→consumer fusion, the explicit multi-GPU
//! validator, MoE, and the parallelism analytics.

use t3::core::agfuse::{run_fused_ag_gemm, sequential_ag_gemm, AgFuseOptions};
use t3::core::engine::{
    run_fused_gemm_all_to_all, run_fused_gemm_direct_rs, run_fused_gemm_rs, FusedOptions,
    PolicyChoice,
};
use t3::core::multigpu::run_multi_gpu_fused_rs;
use t3::core::study;
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::models::moe::{moe_combine_study, MoeConfig};
use t3::models::parallelism::{FsdpConfig, PipelineConfig};
use t3::models::zoo;
use t3::sim::config::SystemConfig;
use t3::sim::stats::TrafficClass;

fn sys() -> SystemConfig {
    SystemConfig::paper_default()
}

fn grid(sys: &SystemConfig) -> GemmGrid {
    GemmGrid::new(&sys.gpu, GemmShape::new(2048, 2048, 512))
}

#[test]
fn topology_ordering_direct_beats_ring_beats_sequential() {
    let s = sys();
    let g = grid(&s);
    let ring = run_fused_gemm_rs(&s, g.clone(), &FusedOptions::default());
    let direct = run_fused_gemm_direct_rs(&s, g.clone(), &FusedOptions::default());
    assert!(direct.cycles <= ring.cycles);
    // Direct-RS: the collective adds zero DRAM reads.
    assert_eq!(direct.stats.bytes(TrafficClass::RsRead), 0);
    assert!(ring.stats.bytes(TrafficClass::RsRead) > 0);
}

#[test]
fn explicit_multi_gpu_validates_every_policy() {
    let s = sys();
    for policy in [PolicyChoice::RoundRobin, PolicyChoice::McaDynamic] {
        let opts = FusedOptions {
            policy,
            ..FusedOptions::default()
        };
        let explicit = run_multi_gpu_fused_rs(&s, grid(&s), &opts);
        let mirrored = run_fused_gemm_rs(&s, grid(&s), &opts);
        assert_eq!(explicit.skew, 0, "{policy:?}: homogeneous GPUs skewed");
        assert!(
            explicit.mirror_error(&mirrored) < 0.05,
            "{policy:?}: methodology error {:.3}",
            explicit.mirror_error(&mirrored)
        );
    }
}

#[test]
fn agfuse_respects_bounds_and_hints() {
    let s = sys();
    let g = GemmGrid::new(&s.gpu, GemmShape::new(4096, 1024, 1024));
    let seq = sequential_ag_gemm(&s, g.clone());
    let aligned = run_fused_ag_gemm(&s, g.clone(), &AgFuseOptions::default());
    let blind = run_fused_ag_gemm(
        &s,
        g,
        &AgFuseOptions {
            arrival_aligned: false,
        },
    );
    assert!(aligned.cycles < seq.cycles);
    assert!(blind.cycles >= aligned.cycles);
    assert!(blind.cycles <= seq.cycles * 11 / 10);
}

#[test]
fn all_to_all_fusion_has_no_collective_reads() {
    let s = sys();
    let r = run_fused_gemm_all_to_all(&s, grid(&s), &FusedOptions::default());
    assert_eq!(r.stats.bytes(TrafficClass::RsRead), 0);
    assert_eq!(r.dma_transfers, 0);
    assert!(r.link_bytes_sent > 0);
}

#[test]
fn moe_and_generation_never_regress() {
    let s = sys();
    let moe = moe_combine_study(&s, &MoeConfig::switch_like(2048, 1024));
    assert!(
        moe.speedup >= 0.99,
        "MoE fusion regressed: {:.3}",
        moe.speedup
    );
    for tokens in [16u64, 256] {
        let row = study::generation_phase_study(&s, 3072, tokens, 8);
        assert!(
            row.speedup >= 0.98,
            "{tokens}-token generation regressed: {:.3}",
            row.speedup
        );
    }
}

#[test]
fn coarse_overlap_mca_protects_the_producer() {
    let s = sys();
    let shape = GemmShape::new(1024, 4256, 2128);
    let comm = 64 << 20;
    let rr = study::coarse_overlap_study(&s, &shape, comm, PolicyChoice::RoundRobin);
    let mca = study::coarse_overlap_study(&s, &shape, comm, PolicyChoice::McaDynamic);
    assert!(rr.gemm_slowdown >= mca.gemm_slowdown);
    assert!(
        mca.gemm_slowdown < 1.25,
        "MCA slowdown {:.3}",
        mca.gemm_slowdown
    );
}

#[test]
fn parallelism_analytics_are_consistent() {
    let s = sys();
    let model = zoo::t_nlg();
    let pp = PipelineConfig::new(8, 32);
    assert!(pp.bubble_fraction() < 0.2);
    let fsdp = FsdpConfig { shards: 8 };
    let ag = fsdp.weight_ag_cycles(&s, &model);
    assert!(ag > 0);
    // A whole layer of compute comfortably hides the weight gather for
    // T-NLG-scale layers at 8-way sharding.
    let layer_cycles = 4_000_000;
    assert!((fsdp.hidden_fraction(&s, &model, layer_cycles) - 1.0).abs() < 1e-9);
}
