//! Property-based correctness of T3's fused execution.
//!
//! The central functional claim (Section 4): fusing a tiled GEMM with
//! its collective through the address-space configuration, near-memory
//! updates, and the Tracker produces the same data as running the GEMM
//! and the collective back-to-back — for arbitrary shapes, tile edge
//! effects, and device counts drawn from a seeded deterministic PRNG.

#![allow(clippy::needless_range_loop)] // -- index loops mirror the per-element equivalence being proven

use t3::collectives::gemm::matmul;
use t3::collectives::reference::assert_close;
use t3::core::fused::{
    fused_gemm_all_to_all, fused_gemm_direct_rs, fused_gemm_ring_rs, to_tile_order, FusedProducer,
};
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::net::ring::Ring;
use t3::sim::config::{GpuConfig, SystemConfig};
use t3::sim::rng::SplitMix64;

fn gpu_with_tile(tile: u32) -> GpuConfig {
    let mut gpu = SystemConfig::paper_default().gpu;
    gpu.tile_dim = tile;
    gpu
}

fn make_producers(n_dev: usize, m: usize, n: usize, k: usize, seed: u64) -> Vec<FusedProducer> {
    let mut rng = SplitMix64::new(seed);
    (0..n_dev)
        .map(|_| FusedProducer {
            a: (0..m * k).map(|_| rng.gen_f32(0.5)).collect(),
            b: (0..k * n).map(|_| rng.gen_f32(0.5)).collect(),
        })
        .collect()
}

fn tile_ordered_sum(gpu: &GpuConfig, shape: GemmShape, prods: &[FusedProducer]) -> Vec<f32> {
    let grid = GemmGrid::new(gpu, shape);
    let (m, n, k) = (shape.m as usize, shape.n as usize, shape.k as usize);
    let mut sum = vec![0.0f32; m * n];
    for p in prods {
        for (s, v) in sum.iter_mut().zip(matmul(&p.a, &p.b, m, n, k)) {
            *s += v;
        }
    }
    to_tile_order(&grid, &sum)
}

/// Fused ring-RS == GEMM then reduce, on every owned chunk, for
/// arbitrary shapes (including edge tiles) and device counts.
#[test]
fn fused_ring_rs_equals_gemm_then_reduce() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let n_dev = rng.gen_range_usize(2, 7);
        let m = rng.gen_range(17, 80);
        let n = rng.gen_range(17, 80);
        let k = rng.gen_range(1, 24);
        let tile = rng.pick(&[16u32, 32]);
        let gpu = gpu_with_tile(tile);
        let shape = GemmShape::new(m, n, k);
        let prods = make_producers(n_dev, m as usize, n as usize, k as usize, seed ^ 0xA5A5);
        let expected = tile_ordered_sum(&gpu, shape, &prods);
        let outcome = fused_gemm_ring_rs(&gpu, shape, &prods);
        let ring = Ring::new(n_dev);
        for d in 0..n_dev {
            let chunk = ring.rs_owned_chunk(d);
            let (s, e) = outcome.chunk_ranges[chunk];
            assert_close(outcome.owned_chunk(ring, d), &expected[s..e], 1e-3);
        }
        // Structural invariants.
        assert_eq!(
            outcome.dma_transfers,
            (n_dev * n_dev.saturating_sub(2)) as u64,
            "seed {seed}"
        );
    }
}

/// Fused direct-RS == GEMM then reduce, with zero DMA transfers.
#[test]
fn fused_direct_rs_equals_gemm_then_reduce() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let n_dev = rng.gen_range_usize(2, 7);
        let m = rng.gen_range(17, 64);
        let n = rng.gen_range(17, 64);
        let k = rng.gen_range(1, 16);
        let gpu = gpu_with_tile(16);
        let shape = GemmShape::new(m, n, k);
        let prods = make_producers(n_dev, m as usize, n as usize, k as usize, seed ^ 0x5A5A);
        let expected = tile_ordered_sum(&gpu, shape, &prods);
        let outcome = fused_gemm_direct_rs(&gpu, shape, &prods);
        for d in 0..n_dev {
            let (s, e) = outcome.chunk_ranges[d];
            assert_close(&outcome.outputs[d].as_slice()[s..e], &expected[s..e], 1e-3);
        }
        assert_eq!(outcome.dma_transfers, 0, "seed {seed}");
    }
}

/// Fused all-to-all places every source chunk in the right slot.
#[test]
fn fused_all_to_all_exchanges_correctly() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(seed);
        let n_dev = rng.pick(&[2usize, 4]);
        let k = rng.gen_range(1, 12);
        // WG count must divide by devices: 4x4 tiles of 16 with m=n=64.
        let gpu = gpu_with_tile(16);
        let (m, n) = (64u64, 64u64);
        let shape = GemmShape::new(m, n, k);
        let grid = GemmGrid::new(&gpu, shape);
        let prods = make_producers(n_dev, m as usize, n as usize, k as usize, seed ^ 0xC3C3);
        let outcome = fused_gemm_all_to_all(&gpu, shape, &prods);
        let chunk = outcome.chunk_ranges[0].1 - outcome.chunk_ranges[0].0;
        for dst in 0..n_dev {
            for src in 0..n_dev {
                let local = to_tile_order(
                    &grid,
                    &matmul(
                        &prods[src].a,
                        &prods[src].b,
                        m as usize,
                        n as usize,
                        k as usize,
                    ),
                );
                let (cs, ce) = outcome.chunk_ranges[dst];
                assert_close(
                    &outcome.outputs[dst].as_slice()[src * chunk..(src + 1) * chunk],
                    &local[cs..ce],
                    1e-3,
                );
            }
        }
    }
}

/// Functional ring all-reduce (the baseline collective) matches the
/// element-wise sum for arbitrary sizes.
#[test]
fn ring_all_reduce_matches_sum() {
    for seed in 0..24u64 {
        let mut rng = SplitMix64::new(seed);
        let n_dev = rng.gen_range_usize(2, 9);
        let len = rng.gen_range_usize(1, 200);
        let inputs: Vec<Vec<f32>> = (0..n_dev)
            .map(|_| (0..len).map(|_| rng.gen_f32(0.5)).collect())
            .collect();
        let expected = t3::collectives::reference::elementwise_sum(&inputs);
        let mut cluster = t3::collectives::cluster::Cluster::from_buffers(inputs);
        t3::collectives::ring::ring_all_reduce(&mut cluster);
        for d in 0..n_dev {
            assert_close(cluster.device(d).as_slice(), &expected, 1e-3);
        }
    }
}

/// Deterministic regression: the exact configuration of Figure 7
/// (4 GPUs) with a grid whose stage count exceeds the chunk count.
#[test]
fn figure_7_configuration_regression() {
    let gpu = gpu_with_tile(16);
    let shape = GemmShape::new(128, 128, 8);
    let prods = make_producers(4, 128, 128, 8, 0xFEED);
    let expected = tile_ordered_sum(&gpu, shape, &prods);
    let outcome = fused_gemm_ring_rs(&gpu, shape, &prods);
    let ring = Ring::new(4);
    for d in 0..4 {
        let chunk = ring.rs_owned_chunk(d);
        let (s, e) = outcome.chunk_ranges[chunk];
        assert_close(outcome.owned_chunk(ring, d), &expected[s..e], 1e-3);
    }
    // 4 GPUs: N-2 = 2 steady-state DMA steps per GPU (Figure 7).
    assert_eq!(outcome.dma_transfers, 8);
    // Every WF of every tracked chunk triggered exactly once: 3 tracked
    // chunks per device x 16 WGs per chunk x 8 WFs... except WFs of
    // 16-row tiles split 8 ways are 2 rows each (all non-empty).
    assert_eq!(outcome.triggers_fired, 4 * 3 * (64 / 4) * 8);
}
