//! Property-based correctness of T3's fused execution.
//!
//! The central functional claim (Section 4): fusing a tiled GEMM with
//! its collective through the address-space configuration, near-memory
//! updates, and the Tracker produces the same data as running the GEMM
//! and the collective back-to-back — for arbitrary shapes, tile edge
//! effects, and device counts.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use t3::collectives::gemm::matmul;
use t3::collectives::reference::assert_close;
use t3::core::fused::{
    fused_gemm_all_to_all, fused_gemm_direct_rs, fused_gemm_ring_rs, to_tile_order,
    FusedProducer,
};
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::net::ring::Ring;
use t3::sim::config::{GpuConfig, SystemConfig};

fn gpu_with_tile(tile: u32) -> GpuConfig {
    let mut gpu = SystemConfig::paper_default().gpu;
    gpu.tile_dim = tile;
    gpu
}

fn make_producers(
    n_dev: usize,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
) -> Vec<FusedProducer> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    (0..n_dev)
        .map(|_| FusedProducer {
            a: (0..m * k).map(|_| next()).collect(),
            b: (0..k * n).map(|_| next()).collect(),
        })
        .collect()
}

fn tile_ordered_sum(
    gpu: &GpuConfig,
    shape: GemmShape,
    prods: &[FusedProducer],
) -> Vec<f32> {
    let grid = GemmGrid::new(gpu, shape);
    let (m, n, k) = (shape.m as usize, shape.n as usize, shape.k as usize);
    let mut sum = vec![0.0f32; m * n];
    for p in prods {
        for (s, v) in sum.iter_mut().zip(matmul(&p.a, &p.b, m, n, k)) {
            *s += v;
        }
    }
    to_tile_order(&grid, &sum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fused ring-RS == GEMM then reduce, on every owned chunk, for
    /// arbitrary shapes (including edge tiles) and device counts.
    #[test]
    fn fused_ring_rs_equals_gemm_then_reduce(
        n_dev in 2usize..7,
        m in 17u64..80,
        n in 17u64..80,
        k in 1u64..24,
        tile in prop::sample::select(vec![16u32, 32]),
        seed in any::<u64>(),
    ) {
        let gpu = gpu_with_tile(tile);
        let shape = GemmShape::new(m, n, k);
        let prods = make_producers(n_dev, m as usize, n as usize, k as usize, seed);
        let expected = tile_ordered_sum(&gpu, shape, &prods);
        let outcome = fused_gemm_ring_rs(&gpu, shape, &prods);
        let ring = Ring::new(n_dev);
        for d in 0..n_dev {
            let chunk = ring.rs_owned_chunk(d);
            let (s, e) = outcome.chunk_ranges[chunk];
            assert_close(outcome.owned_chunk(ring, d), &expected[s..e], 1e-3);
        }
        // Structural invariants.
        prop_assert_eq!(outcome.dma_transfers, (n_dev * n_dev.saturating_sub(2)) as u64);
    }

    /// Fused direct-RS == GEMM then reduce, with zero DMA transfers.
    #[test]
    fn fused_direct_rs_equals_gemm_then_reduce(
        n_dev in 2usize..7,
        m in 17u64..64,
        n in 17u64..64,
        k in 1u64..16,
        seed in any::<u64>(),
    ) {
        let gpu = gpu_with_tile(16);
        let shape = GemmShape::new(m, n, k);
        let prods = make_producers(n_dev, m as usize, n as usize, k as usize, seed);
        let expected = tile_ordered_sum(&gpu, shape, &prods);
        let outcome = fused_gemm_direct_rs(&gpu, shape, &prods);
        for d in 0..n_dev {
            let (s, e) = outcome.chunk_ranges[d];
            assert_close(&outcome.outputs[d].as_slice()[s..e], &expected[s..e], 1e-3);
        }
        prop_assert_eq!(outcome.dma_transfers, 0);
    }

    /// Fused all-to-all places every source chunk in the right slot.
    #[test]
    fn fused_all_to_all_exchanges_correctly(
        n_dev in prop::sample::select(vec![2usize, 4]),
        k in 1u64..12,
        seed in any::<u64>(),
    ) {
        // WG count must divide by devices: 4x4 tiles of 16 with m=n=64.
        let gpu = gpu_with_tile(16);
        let (m, n) = (64u64, 64u64);
        let shape = GemmShape::new(m, n, k);
        let grid = GemmGrid::new(&gpu, shape);
        let prods = make_producers(n_dev, m as usize, n as usize, k as usize, seed);
        let outcome = fused_gemm_all_to_all(&gpu, shape, &prods);
        let chunk = outcome.chunk_ranges[0].1 - outcome.chunk_ranges[0].0;
        for dst in 0..n_dev {
            for src in 0..n_dev {
                let local = to_tile_order(
                    &grid,
                    &matmul(&prods[src].a, &prods[src].b, m as usize, n as usize, k as usize),
                );
                let (cs, ce) = outcome.chunk_ranges[dst];
                assert_close(
                    &outcome.outputs[dst].as_slice()[src * chunk..(src + 1) * chunk],
                    &local[cs..ce],
                    1e-3,
                );
            }
        }
    }

    /// Functional ring all-reduce (the baseline collective) matches the
    /// element-wise sum for arbitrary sizes.
    #[test]
    fn ring_all_reduce_matches_sum(
        n_dev in 2usize..9,
        len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let inputs: Vec<Vec<f32>> =
            (0..n_dev).map(|_| (0..len).map(|_| next()).collect()).collect();
        let expected = t3::collectives::reference::elementwise_sum(&inputs);
        let mut cluster = t3::collectives::cluster::Cluster::from_buffers(inputs);
        t3::collectives::ring::ring_all_reduce(&mut cluster);
        for d in 0..n_dev {
            assert_close(cluster.device(d).as_slice(), &expected, 1e-3);
        }
    }
}

/// Deterministic regression: the exact configuration of Figure 7
/// (4 GPUs) with a grid whose stage count exceeds the chunk count.
#[test]
fn figure_7_configuration_regression() {
    let gpu = gpu_with_tile(16);
    let shape = GemmShape::new(128, 128, 8);
    let prods = make_producers(4, 128, 128, 8, 0xFEED);
    let expected = tile_ordered_sum(&gpu, shape, &prods);
    let outcome = fused_gemm_ring_rs(&gpu, shape, &prods);
    let ring = Ring::new(4);
    for d in 0..4 {
        let chunk = ring.rs_owned_chunk(d);
        let (s, e) = outcome.chunk_ranges[chunk];
        assert_close(outcome.owned_chunk(ring, d), &expected[s..e], 1e-3);
    }
    // 4 GPUs: N-2 = 2 steady-state DMA steps per GPU (Figure 7).
    assert_eq!(outcome.dma_transfers, 8);
    // Every WF of every tracked chunk triggered exactly once: 3 tracked
    // chunks per device x 16 WGs per chunk x 8 WFs... except WFs of
    // 16-row tiles split 8 ways are 2 rows each (all non-empty).
    assert_eq!(outcome.triggers_fired, 4 * 3 * (64 / 4) * 8);
}
