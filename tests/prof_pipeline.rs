//! End-to-end pipeline tests for `t3-prof`: the analytics must agree
//! with the simulator's own cycle tally, survive the Chrome-JSON
//! round trip losslessly, render byte-identical golden output on a
//! pinned multinode workload, and gate the checked-in perf baseline.

use t3_bench::experiments::{self, ExperimentScale};
use t3_prof::analyze::{render as render_analysis, Analysis};
use t3_prof::check;
use t3_prof::collective::{collective_records, render as render_collectives};
use t3_prof::load::parse_chrome_trace;
use t3_trace::chrome::chrome_trace_json;
use t3_trace::Record;

fn tnlg_records() -> (Vec<Record>, u64, f64) {
    let (ins, run, clock_ghz) = experiments::traced_tnlg_sublayer(ExperimentScale::FAST);
    let tracer = ins.tracer.as_ref().expect("full instruments");
    (tracer.records().to_vec(), run.cycles, clock_ghz)
}

fn multinode_ring_records() -> (Vec<Record>, u64) {
    let (ins, run, _) = experiments::traced_multinode(ExperimentScale::FAST, "ring");
    let tracer = ins.tracer.as_ref().expect("full instruments");
    (tracer.records().to_vec(), run.cycles)
}

/// The acceptance cross-check: the analysis of a traced tnlg run must
/// agree with the engine's tallied `sim_cycles`, and the labeled
/// interval sets must partition the run exactly.
#[test]
fn tnlg_analysis_is_consistent_with_sim_cycles() {
    let (records, sim_cycles, _) = tnlg_records();
    let a = Analysis::from_records(&records);
    assert_eq!(
        a.total_cycles, sim_cycles,
        "analysis total must equal the engine's cycle tally"
    );
    assert_eq!(
        a.compute_cycles + a.exposed_collective_cycles + a.dma_fabric_cycles + a.idle_cycles,
        a.total_cycles,
        "compute/exposed/dma/idle must partition the run"
    );
    assert_eq!(
        a.overlapped_cycles + a.exposed_collective_cycles,
        a.collective_busy_cycles,
        "overlapped + exposed must cover all collective busy cycles"
    );
    let labeled: u64 = a.critical_path.iter().map(|s| s.end - s.start).sum();
    assert_eq!(labeled, a.total_cycles, "critical path must cover the run");
    // The fused run genuinely overlaps: both kinds of cycles exist.
    assert!(a.compute_cycles > 0 && a.collective_busy_cycles > 0);
    assert!(a.overlapped_cycles > 0, "T3 overlap must be visible");
    assert!(a.memory_stall_cycles > 0);
}

/// The exporter embeds exact integer cycles, so analysis of a trace
/// loaded back from Chrome JSON is identical to analysis of the
/// in-memory records.
#[test]
fn analysis_survives_the_chrome_round_trip() {
    let (records, _, clock_ghz) = tnlg_records();
    let direct = Analysis::from_records(&records);
    let json = chrome_trace_json(&records, clock_ghz);
    let loaded = parse_chrome_trace(&json).expect("exported traces parse");
    let round_tripped = Analysis::from_records(&loaded);
    assert_eq!(direct, round_tripped);
    assert_eq!(
        render_collectives(&collective_records(&records)),
        render_collectives(&collective_records(&loaded)),
    );
}

/// Same trace, same analysis: the analytics pass itself is
/// deterministic down to the byte.
#[test]
fn analytics_are_deterministic_across_runs() {
    let (a, _) = multinode_ring_records();
    let (b, _) = multinode_ring_records();
    assert_eq!(
        render_analysis(&Analysis::from_records(&a)),
        render_analysis(&Analysis::from_records(&b)),
    );
    assert_eq!(
        render_collectives(&collective_records(&a)),
        render_collectives(&collective_records(&b)),
    );
}

/// Golden test: the full analyze + collectives output of the FAST
/// ring multinode run, byte for byte. A diff here means collective
/// timing or attribution changed — update deliberately, with the
/// perf baseline, never casually.
#[test]
fn multinode_ring_golden_output() {
    let (records, sim_cycles) = multinode_ring_records();
    assert_eq!(sim_cycles, 198_519);
    let analysis = render_analysis(&Analysis::from_records(&records));
    let expected_analysis = "\
total cycles              : 198519
gemm stages               : 4
compute cycles            : 186867 (94.1% of total)
  memory-stall cycles     : 26639
collective busy cycles    : 76390 (14 sends, 7626752 bytes)
  overlapped with compute : 71189
  exposed                 : 5201 (2.6% of total)
dma/fabric-only cycles    : 2853
idle cycles               : 3598
fast-forward leaps        : 5 (6451 skippable cycles, 3.2% of total)
overlap fraction          : 93.1%
critical path             : 11 segments
  [0..2001) idle (2001 cycles)
  [2001..57264) compute (55263 cycles)
  [57264..57265) collective (1 cycles)
  [57265..101405) compute (44140 cycles)
  [101405..101406) dma/fabric (1 cycles)
  [101406..148813) compute (47407 cycles)
  [148813..148814) dma/fabric (1 cycles)
  [148814..188871) compute (40057 cycles)
  [188871..191722) dma/fabric (2851 cycles)
  [191722..196922) collective (5200 cycles)
  [196922..198519) idle (1597 cycles)
";
    assert_eq!(analysis, expected_analysis);

    let collectives = render_collectives(&collective_records(&records));
    let expected_collectives = "\
collective#00 op=reduce-scatter sched=ring-dma chunk=1 bytes=532480 hops=1 trigger=63791 send=[64538..69508) exposed=0
collective#01 op=reduce-scatter sched=ring-dma chunk=2 bytes=557056 hops=1 trigger=71638 send=[72419..77619) exposed=0
collective#02 op=reduce-scatter sched=ring-dma chunk=3 bytes=532480 hops=1 trigger=78339 send=[79086..84056) exposed=0
collective#03 op=reduce-scatter sched=ring-dma chunk=4 bytes=557056 hops=1 trigger=101405 send=[104256..109456) exposed=0
collective#04 op=reduce-scatter sched=ring-dma chunk=5 bytes=532480 hops=1 trigger=110698 send=[111445..116415) exposed=0
collective#05 op=reduce-scatter sched=ring-dma chunk=6 bytes=557056 hops=1 trigger=118630 send=[119411..124611) exposed=0
collective#06 op=reduce-scatter sched=ring-dma chunk=7 bytes=532480 hops=1 trigger=125246 send=[125993..130963) exposed=0
collective#07 op=reduce-scatter sched=ring-dma chunk=8 bytes=557056 hops=1 trigger=133784 send=[134565..139765) exposed=0
collective#08 op=reduce-scatter sched=ring-dma chunk=9 bytes=532480 hops=1 trigger=148813 send=[151539..156509) exposed=0
collective#09 op=reduce-scatter sched=ring-dma chunk=10 bytes=557056 hops=1 trigger=158375 send=[159156..164356) exposed=0
collective#10 op=reduce-scatter sched=ring-dma chunk=11 bytes=532480 hops=1 trigger=165340 send=[166087..171057) exposed=0
collective#11 op=reduce-scatter sched=ring-dma chunk=12 bytes=557056 hops=1 trigger=173529 send=[174310..179510) exposed=0
collective#12 op=reduce-scatter sched=ring-dma chunk=13 bytes=532480 hops=1 trigger=179888 send=[180635..185605) exposed=0
collective#13 op=reduce-scatter sched=ring-dma chunk=14 bytes=557056 hops=1 trigger=188871 send=[191722..196922) exposed=5200
total: 14 collectives, 7626752 bytes, 5200 exposed cycles
";
    assert_eq!(collectives, expected_collectives);
}

/// The checked-in perf baseline must self-check: a report with the
/// same cycles passes the gate, an injected regression beyond the
/// band fails it.
#[test]
fn bench_baseline_gates_regressions() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_10.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_10.json is checked in");
    let baseline = check::parse_report(&text).expect("baseline parses");
    assert!(!baseline.is_empty());
    assert!(
        baseline.iter().any(|j| j.sim_cycles > 0),
        "baseline must pin real simulated cycles"
    );
    assert!(baseline.iter().all(|j| j.status == "ok"));

    // Identity: the baseline passes against itself.
    let verdict = check::check(&baseline, &baseline, check::DEFAULT_TOLERANCE_PERMILLE);
    assert!(verdict.passed(), "{}", verdict.render_text());

    // Injected regression: grow the largest job past the band.
    let mut regressed = baseline.clone();
    let biggest = regressed
        .iter_mut()
        .max_by_key(|j| j.sim_cycles)
        .expect("non-empty");
    biggest.sim_cycles += biggest.sim_cycles / 100; // +1% > ±0.5%
    let verdict = check::check(&regressed, &baseline, check::DEFAULT_TOLERANCE_PERMILLE);
    assert!(!verdict.passed(), "{}", verdict.render_text());

    // A dropped job also fails: coverage must not silently shrink.
    let shrunk: Vec<_> = baseline[1..].to_vec();
    let verdict = check::check(&shrunk, &baseline, check::DEFAULT_TOLERANCE_PERMILLE);
    assert!(!verdict.passed());
}
