//! Cross-crate invariants of the timing pipeline: the fused engine,
//! the configuration layer, and the traffic accounting must agree
//! with each other and with first principles.

use t3::core::configs::Configuration;
use t3::core::engine::{run_fused_gemm_rs, FusedOptions, PolicyChoice};
use t3::gpu::collective::{CollectiveKind, RingCollective};
use t3::gpu::engine::{run_gemm_isolated, WritePolicy};
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::sim::config::SystemConfig;
use t3::sim::stats::TrafficClass;

fn sys() -> SystemConfig {
    SystemConfig::paper_default()
}

/// A scaled T-NLG FC-2-like sublayer (tokens cut 4x).
fn shape() -> GemmShape {
    GemmShape::new(2048, 4256, 2128)
}

#[test]
fn speedup_ordering_follows_the_paper() {
    let s = sys();
    let seq = Configuration::Sequential.run(&s, &shape());
    let t3 = Configuration::T3.run(&s, &shape());
    let mca = Configuration::T3Mca.run(&s, &shape());
    assert!(t3.speedup_over(&seq) > 1.0, "T3 must beat Sequential");
    assert!(
        mca.speedup_over(&seq) >= t3.speedup_over(&seq) * 0.98,
        "MCA must not lose to plain T3"
    );
}

#[test]
fn fused_traffic_identities() {
    let s = sys();
    let grid = GemmGrid::new(&s.gpu, shape());
    let out = grid.shape().output_bytes();
    let n = s.num_gpus as u64;
    let chunk = out / n;
    let r = run_fused_gemm_rs(&s, grid, &FusedOptions::default());
    let tol = 128 * 1024;
    // Local NMC stores: output minus the warm-up chunk.
    let w = r.stats.bytes(TrafficClass::GemmWrite);
    assert!(w + tol > out - chunk && w < out - chunk + tol, "writes {w}");
    // Incoming updates equal local stores (mirrored ring symmetry).
    let upd = r.stats.bytes(TrafficClass::RsUpdate);
    assert!(
        upd + tol > w && upd < w + tol,
        "updates {upd} vs writes {w}"
    );
    // The link carried the warm-up chunk plus N-2 DMA chunks.
    assert!(
        r.link_bytes_sent + tol > out - chunk && r.link_bytes_sent < out - chunk + tol,
        "link {}",
        r.link_bytes_sent
    );
    // DMA source reads: one read per steady-state chunk.
    let reads = r.stats.bytes(TrafficClass::RsRead);
    assert!(
        reads + tol > out - 2 * chunk && reads < out - 2 * chunk + tol,
        "reads {reads}"
    );
}

#[test]
fn fused_time_bounded_by_components() {
    let s = sys();
    let grid = GemmGrid::new(&s.gpu, shape());
    let gemm = run_gemm_isolated(&s, grid.clone(), WritePolicy::BypassLocal);
    let rs = RingCollective::baseline(CollectiveKind::ReduceScatter, shape().output_bytes(), &s)
        .simulate(&s);
    let fused = run_fused_gemm_rs(
        &s,
        grid,
        &FusedOptions {
            policy: PolicyChoice::McaDynamic,
            ..FusedOptions::default()
        },
    );
    // Lower bound: cannot finish before the producer GEMM alone.
    assert!(fused.cycles as f64 >= gemm.cycles as f64 * 0.95);
    // Upper bound: must beat strictly serial GEMM + RS.
    assert!(fused.cycles < gemm.cycles + rs.cycles);
}

#[test]
fn tracker_sizing_holds_at_scale() {
    // The paper sizes the Tracker for the WGs of a producer stage
    // (Section 4.2.1); the fused run's high-water mark must stay within
    // a small number of stages' worth of WF entries.
    let s = sys();
    let grid = GemmGrid::new(&s.gpu, shape());
    let per_stage = (s.gpu.concurrent_wgs() * s.gpu.wfs_per_wg) as usize;
    let r = run_fused_gemm_rs(&s, grid, &FusedOptions::default());
    assert!(
        r.peak_tracker_entries <= 8 * per_stage,
        "peak {} vs per-stage {}",
        r.peak_tracker_entries,
        per_stage
    );
}

#[test]
fn sequential_stats_cover_gemm_and_collectives() {
    let s = sys();
    let seq = Configuration::Sequential.run(&s, &shape());
    let out = shape().output_bytes();
    let n = s.num_gpus as u64;
    let c = out / n;
    // Baseline ring-RS traffic per Figure 10(a).
    assert_eq!(
        seq.stats.bytes(TrafficClass::RsRead),
        c + 2 * c * (n - 2) + 2 * c
    );
    assert_eq!(seq.stats.bytes(TrafficClass::RsWrite), n * c);
    // AG moves each non-owned chunk once in each direction.
    assert_eq!(seq.stats.bytes(TrafficClass::AgRead), (n - 1) * c);
    assert_eq!(seq.stats.bytes(TrafficClass::AgWrite), (n - 1) * c);
    // The GEMM writes the full output (within line rounding).
    let w = seq.stats.bytes(TrafficClass::GemmWrite);
    assert!(w >= out && w < out + (1 << 20), "GEMM writes {w} vs {out}");
}

#[test]
fn num_gpus_scaling_shrinks_chunks_not_totals() {
    let s8 = sys();
    let s16 = sys().with_num_gpus(16);
    let grid8 = GemmGrid::new(&s8.gpu, shape());
    let r8 = run_fused_gemm_rs(&s8, grid8.clone(), &FusedOptions::default());
    let r16 = run_fused_gemm_rs(&s16, grid8, &FusedOptions::default());
    assert_eq!(r8.dma_transfers, 6);
    assert_eq!(r16.dma_transfers, 14);
    // More GPUs -> smaller warm-up chunk -> more local write traffic.
    assert!(r16.stats.bytes(TrafficClass::GemmWrite) > r8.stats.bytes(TrafficClass::GemmWrite));
}

#[test]
fn future_hardware_shortens_the_fused_run() {
    let base = sys();
    let fut = SystemConfig::future_2x_cu();
    let gb = GemmGrid::new(&base.gpu, shape());
    let gf = GemmGrid::new(&fut.gpu, shape());
    let rb = run_fused_gemm_rs(&base, gb, &FusedOptions::default());
    let rf = run_fused_gemm_rs(&fut, gf, &FusedOptions::default());
    assert!(
        rf.cycles < rb.cycles,
        "2x CUs must shorten the fused run: {} vs {}",
        rf.cycles,
        rb.cycles
    );
}
