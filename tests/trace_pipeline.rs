//! Golden end-to-end test of the observability pipeline: a small
//! fused GEMM-RS run traced through [`t3::trace::Instruments`], with
//! event counts cross-checked against the run's own results, metrics
//! cross-checked against [`TrafficStats`], and the Chrome trace-event
//! exporter producing structurally valid, cycle-ordered JSON.

use t3::core::engine::{run_fused_gemm_rs, run_fused_gemm_rs_instrumented, FusedOptions};
use t3::gpu::gemm::{GemmGrid, GemmShape};
use t3::sim::config::SystemConfig;
use t3::sim::stats::TrafficClass;
use t3::trace::chrome::chrome_trace_json;
use t3::trace::{Detail, Event, Instruments, Tracer};

fn small_system() -> (SystemConfig, GemmShape) {
    let mut sys = SystemConfig::paper_default();
    sys.num_gpus = 4;
    (sys, GemmShape::new(512, 1024, 256))
}

/// Enabling instrumentation must not perturb the simulation: every
/// externally visible result is bit-identical with and without it.
#[test]
fn traced_run_is_bit_identical_to_untraced() {
    let (sys, shape) = small_system();
    let opts = FusedOptions::default();
    let plain = run_fused_gemm_rs(&sys, GemmGrid::new(&sys.gpu, shape), &opts);
    let mut ins = Instruments::full();
    let traced =
        run_fused_gemm_rs_instrumented(&sys, GemmGrid::new(&sys.gpu, shape), &opts, Some(&mut ins));
    assert_eq!(traced.cycles, plain.cycles);
    assert_eq!(traced.dma_transfers, plain.dma_transfers);
    assert_eq!(traced.link_bytes_sent, plain.link_bytes_sent);
    assert_eq!(traced.peak_tracker_entries, plain.peak_tracker_entries);
    for class in TrafficClass::ALL {
        assert_eq!(traced.stats.bytes(class), plain.stats.bytes(class));
    }
}

/// Event counts and byte totals agree with the run's own accounting.
#[test]
fn event_counts_match_run_result() {
    let (sys, shape) = small_system();
    let opts = FusedOptions::default();
    let mut ins = Instruments::full();
    let run =
        run_fused_gemm_rs_instrumented(&sys, GemmGrid::new(&sys.gpu, shape), &opts, Some(&mut ins));
    let tracer = ins.tracer.as_ref().unwrap();
    let metrics = ins.metrics.as_ref().unwrap();

    // One trigger fire and one DMA chunk send per DMA transfer.
    let fires = tracer.count(|e| matches!(e, Event::DmaTriggerFire { .. }));
    let sends = tracer.count(|e| matches!(e, Event::ChunkSend { .. }));
    assert_eq!(fires as u64, run.dma_transfers);
    assert_eq!(sends as u64, run.dma_transfers);
    assert_eq!(metrics.counter("dma.triggers_fired"), run.dma_transfers);
    assert_eq!(metrics.counter("dma.transfers"), run.dma_transfers);

    // Every byte on the link shows up in a LinkBusy interval.
    let link_bytes: u64 = tracer
        .records()
        .iter()
        .filter_map(|r| match r.event {
            Event::LinkBusy { bytes, .. } => Some(bytes),
            _ => None,
        })
        .sum();
    assert_eq!(link_bytes, run.link_bytes_sent);
    assert_eq!(metrics.counter("link.bytes_sent"), run.link_bytes_sent);

    // GEMM stages: one span per stage of the grid, summary counters.
    let stages = tracer.count(|e| matches!(e, Event::GemmStage { .. }));
    assert!(stages > 0);
    assert_eq!(metrics.counter("gemm.stages"), stages as u64);
    assert_eq!(metrics.counter("run.cycles"), run.cycles);
    assert_eq!(
        metrics.counter("tracker.peak_entries"),
        run.peak_tracker_entries as u64
    );
}

/// Per-class byte counters in the registry equal the run's
/// `TrafficStats` exactly (acceptance criterion for the metrics dump).
#[test]
fn traffic_metrics_match_traffic_stats() {
    let (sys, shape) = small_system();
    let opts = FusedOptions::default();
    let mut ins = Instruments::full();
    let run =
        run_fused_gemm_rs_instrumented(&sys, GemmGrid::new(&sys.gpu, shape), &opts, Some(&mut ins));
    let metrics = ins.metrics.as_ref().unwrap();
    for class in TrafficClass::ALL {
        let name = format!("traffic.{}.bytes", class.slug());
        assert_eq!(metrics.counter(&name), run.stats.bytes(class), "{name}");
    }
    assert_eq!(metrics.counter("traffic.total.bytes"), run.stats.total());
}

/// Tracker-table updates are only recorded at `Detail::Fine`, and at
/// that level one per wavefront completion.
#[test]
fn tracker_updates_gated_behind_fine_detail() {
    let (sys, shape) = small_system();
    let opts = FusedOptions::default();

    let mut coarse = Instruments::full();
    run_fused_gemm_rs_instrumented(
        &sys,
        GemmGrid::new(&sys.gpu, shape),
        &opts,
        Some(&mut coarse),
    );
    let coarse_tracer = coarse.tracer.as_ref().unwrap();
    assert_eq!(
        coarse_tracer.count(|e| matches!(e, Event::TrackerUpdate { .. })),
        0
    );

    let mut fine = Instruments::full();
    fine.tracer = Some(Tracer::with_detail(Detail::Fine));
    run_fused_gemm_rs_instrumented(&sys, GemmGrid::new(&sys.gpu, shape), &opts, Some(&mut fine));
    let fine_tracer = fine.tracer.as_ref().unwrap();
    let updates = fine_tracer.count(|e| matches!(e, Event::TrackerUpdate { .. }));
    let completions = fine
        .metrics
        .as_ref()
        .unwrap()
        .counter("tracker.wf_completions");
    assert_eq!(updates as u64, completions);
    assert!(updates > 0);
}

/// The Chrome exporter emits structurally valid, cycle-ordered JSON
/// that Perfetto / `chrome://tracing` can load.
#[test]
fn chrome_export_is_valid_and_ordered() {
    let (sys, shape) = small_system();
    let opts = FusedOptions::default();
    let mut ins = Instruments::full();
    run_fused_gemm_rs_instrumented(&sys, GemmGrid::new(&sys.gpu, shape), &opts, Some(&mut ins));
    let tracer = ins.tracer.as_ref().unwrap();
    let json = chrome_trace_json(tracer.records(), sys.gpu.clock_ghz);

    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    // Balanced braces and brackets (no string in the output contains
    // them: names and categories are fixed identifiers).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // Every record makes it out, plus metadata lines.
    let durable = json.matches("\"ph\":\"X\"").count()
        + json.matches("\"ph\":\"i\"").count()
        + json.matches("\"ph\":\"C\"").count();
    assert_eq!(durable, tracer.len());
    assert!(json.contains("\"ph\":\"M\""));
    // Timestamps of emitted events are non-decreasing.
    let mut last = f64::NEG_INFINITY;
    for line in json.lines().filter(|l| !l.contains("\"ph\":\"M\"")) {
        if let Some(pos) = line.find("\"ts\":") {
            let rest = &line[pos + 5..];
            let end = rest
                .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
                .unwrap_or(rest.len());
            let ts: f64 = rest[..end].parse().unwrap();
            assert!(ts >= last, "timestamps must be sorted: {ts} < {last}");
            last = ts;
        }
    }
    assert!(last > 0.0);
}
