//! # T3: Transparent Tracking & Triggering — Rust reproduction
//!
//! This facade crate re-exports the whole workspace reproducing
//! *T3: Transparent Tracking & Triggering for Fine-grained Overlap of
//! Compute & Collectives* (ASPLOS 2024):
//!
//! * [`sim`] — cycles, system configuration (Table 1), traffic stats.
//! * [`mem`] — HBM/memory-controller model, arbitration (incl. the
//!   T3-MCA policy), LLC, near-memory compute.
//! * [`gpu`] — compute units, tiled GEMM stage model, CU-executed
//!   collective kernel timing.
//! * [`net`] — ring links and DMA engines.
//! * [`topo`] — topology graphs (ring, fully-connected, switch,
//!   torus, hierarchical), shortest-path routing, topology-derived
//!   collective schedules, and a multi-hop link fabric.
//! * [`collectives`] — functional multi-device collectives over real
//!   `f32` buffers.
//! * [`core`] — the T3 mechanism: Tracker, address-space
//!   configuration, fused GEMM-collective engines, and the evaluated
//!   configurations (Sequential, T3, T3-MCA, ideals).
//! * [`models`] — the Transformer model zoo (Table 2) and end-to-end
//!   analytical model (Figures 4 and 19).
//! * [`trace`] — structured event tracing, metrics registry, and
//!   Chrome trace-event export for the cycle simulator.
//! * [`serve`] — the inference-serving subsystem: deterministic
//!   request traffic, a continuous-batching engine with
//!   prefill/decode phase switching, per-request tail-latency
//!   accounting, and multi-tenant fabric interference.
//! * [`runtime`] — the deterministic parallel experiment runtime:
//!   fingerprinted job graphs, a panic-isolated worker pool with
//!   submission-order output merging, and a content-addressed result
//!   cache.
//! * [`prof`] — trace analytics: happens-before event graph,
//!   critical-path extraction (compute vs. exposed-collective vs.
//!   DMA/fabric cycles, overlap fraction), per-collective records,
//!   and the perf-trajectory regression gate over bench reports.
//! * [`spec`] — the declarative workload/system frontend: `.t3w` /
//!   `.t3s` spec parsing with `file:line` diagnostics, deterministic
//!   3D-parallelism (TP×PP×DP×EP) sweep expansion with
//!   content-derived cache fingerprints, and point execution over
//!   the existing engines.
//!
//! # Quickstart
//!
//! Run a (scaled-down) tensor-sliced FC-2 sublayer under the baseline
//! and under T3-MCA (see `examples/` for full paper-scale runs):
//!
//! ```
//! use t3::core::configs::{Configuration, SublayerOutcome};
//! use t3::gpu::gemm::GemmShape;
//! use t3::sim::config::SystemConfig;
//!
//! let system = SystemConfig::paper_default();
//! let gemm = GemmShape::new(1024, 4256, 2128);
//! let seq = Configuration::Sequential.run(&system, &gemm);
//! let t3mca = Configuration::T3Mca.run(&system, &gemm);
//! assert!(t3mca.total_cycles < seq.total_cycles);
//! let _: SublayerOutcome = seq;
//! ```

pub use t3_collectives as collectives;
pub use t3_core as core;
pub use t3_gpu as gpu;
pub use t3_mem as mem;
pub use t3_models as models;
pub use t3_net as net;
pub use t3_prof as prof;
pub use t3_runtime as runtime;
pub use t3_serve as serve;
pub use t3_sim as sim;
pub use t3_spec as spec;
pub use t3_topo as topo;
pub use t3_trace as trace;
